//! Deterministic fault-injection plane.
//!
//! A [`FaultPlan`] names the *sites* in the simulated stack where faults
//! may fire and the per-opportunity rate at which each one does. A
//! [`FaultInjector`] turns a `(seed, plan)` pair into concrete injection
//! decisions: every site draws from its own [`SimRng`] stream (derived
//! from the seed and a per-site salt), so arming or firing one site never
//! perturbs the decisions made at another, and a failing run replays
//! bit-identically from the `(seed, plan)` pair printed on failure.
//!
//! Rates are stored in parts-per-million so a plan's textual [`spec`]
//! round-trips exactly — no floating-point formatting is involved in the
//! replay contract. Components share one injector through a cloneable
//! [`FaultHandle`]; a component whose handle is `None` (or whose site has
//! rate zero) behaves byte-identically to an unfaulted run.
//!
//! [`spec`]: FaultPlan::spec

use crate::error::{SimError, SimResult};
use crate::rng::SimRng;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// One million: rates are expressed in parts-per-million of opportunities.
pub const PPM_SCALE: u64 = 1_000_000;

/// A place in the simulated stack where a fault may be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultSite {
    /// Transient EIO on an I/O submission; retried with backoff.
    DiskTransientIo,
    /// A per-request service-time spike (seek storm, remapped sector).
    DiskLatencySpike,
    /// A latent sector error: a block silently corrupts on disk and is
    /// only noticed when a checksum is next verified.
    DiskLatentError,
    /// A forced eviction storm: the cache sheds extra pages on insert.
    CacheEvictionStorm,
    /// A dirty page fails writeback and stays dirty for a later retry.
    CacheWritebackFail,
    /// `duet_register` reports the session table full.
    DuetSessionExhaustion,
    /// `duet_get_path` fails as if the file were no longer cached.
    DuetPathUnavailable,
    /// A session is deregistered and re-registered mid-run, losing its
    /// queued events and progress bitmaps.
    DuetSessionChurn,
    /// Drives the API-misuse exerciser that walks every `SimError` arm.
    ApiChaos,
}

impl FaultSite {
    /// Every site, in a fixed order.
    pub const ALL: [FaultSite; 9] = [
        FaultSite::DiskTransientIo,
        FaultSite::DiskLatencySpike,
        FaultSite::DiskLatentError,
        FaultSite::CacheEvictionStorm,
        FaultSite::CacheWritebackFail,
        FaultSite::DuetSessionExhaustion,
        FaultSite::DuetPathUnavailable,
        FaultSite::DuetSessionChurn,
        FaultSite::ApiChaos,
    ];

    /// The stable textual name used in plan specs.
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::DiskTransientIo => "disk-eio",
            FaultSite::DiskLatencySpike => "disk-spike",
            FaultSite::DiskLatentError => "disk-latent",
            FaultSite::CacheEvictionStorm => "cache-storm",
            FaultSite::CacheWritebackFail => "cache-wbfail",
            FaultSite::DuetSessionExhaustion => "duet-nosession",
            FaultSite::DuetPathUnavailable => "duet-nopath",
            FaultSite::DuetSessionChurn => "duet-churn",
            FaultSite::ApiChaos => "api-chaos",
        }
    }

    /// Parse a site label back into a site.
    pub fn from_label(label: &str) -> Option<FaultSite> {
        FaultSite::ALL.iter().copied().find(|s| s.label() == label)
    }

    /// Per-site salt mixed into the seed so each site gets an
    /// independent random stream.
    fn salt(self) -> u64 {
        // Arbitrary odd constants; only their distinctness matters.
        match self {
            FaultSite::DiskTransientIo => 0x9e37_79b9_7f4a_7c15,
            FaultSite::DiskLatencySpike => 0xbf58_476d_1ce4_e5b9,
            FaultSite::DiskLatentError => 0x94d0_49bb_1331_11eb,
            FaultSite::CacheEvictionStorm => 0x2545_f491_4f6c_dd1d,
            FaultSite::CacheWritebackFail => 0xd6e8_feb8_6659_fd93,
            FaultSite::DuetSessionExhaustion => 0xa076_1d64_78bd_642f,
            FaultSite::DuetPathUnavailable => 0xe703_7ed1_a0b4_28db,
            FaultSite::DuetSessionChurn => 0x8ebc_6af0_9c88_c6e3,
            FaultSite::ApiChaos => 0x5895_89e7_d470_3aeb,
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A named set of fault rates, one per [`FaultSite`], in parts per
/// million of opportunities. An empty plan is "quiet": no site ever
/// fires and every component behaves exactly as in an unfaulted run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    rates: BTreeMap<FaultSite, u32>,
}

impl FaultPlan {
    /// The empty plan: nothing fires.
    pub fn quiet() -> FaultPlan {
        FaultPlan::default()
    }

    /// Set the rate for one site, in parts per million (capped at one
    /// million, i.e. "every opportunity").
    pub fn with_ppm(mut self, site: FaultSite, ppm: u32) -> FaultPlan {
        let ppm = ppm.min(PPM_SCALE as u32);
        if ppm == 0 {
            self.rates.remove(&site);
        } else {
            self.rates.insert(site, ppm);
        }
        self
    }

    /// The rate for a site, in parts per million.
    pub fn ppm(&self, site: FaultSite) -> u32 {
        self.rates.get(&site).copied().unwrap_or(0)
    }

    /// True if no site can ever fire.
    pub fn is_quiet(&self) -> bool {
        self.rates.is_empty()
    }

    /// The canonical textual form, e.g. `"cache-storm=80000,disk-eio=40000"`.
    /// Sorted, integer-only, and parsed back exactly by [`FaultPlan::parse`].
    pub fn spec(&self) -> String {
        if self.rates.is_empty() {
            return "quiet".to_string();
        }
        let mut parts: Vec<String> = self
            .rates
            .iter()
            .map(|(site, ppm)| format!("{}={}", site.label(), ppm))
            .collect();
        parts.sort();
        parts.join(",")
    }

    /// Parse a spec produced by [`FaultPlan::spec`] (or written by hand).
    /// `"quiet"` and the empty string yield the quiet plan.
    pub fn parse(spec: &str) -> SimResult<FaultPlan> {
        let spec = spec.trim();
        if spec.is_empty() || spec == "quiet" {
            return Ok(FaultPlan::quiet());
        }
        let mut plan = FaultPlan::quiet();
        for part in spec.split(',') {
            let part = part.trim();
            let (label, rate) = part.split_once('=').ok_or_else(|| {
                SimError::InvalidArgument(format!("fault spec entry '{part}' is not site=ppm"))
            })?;
            let site = FaultSite::from_label(label).ok_or_else(|| {
                SimError::InvalidArgument(format!("unknown fault site '{label}'"))
            })?;
            let ppm: u32 = rate.parse().map_err(|_| {
                SimError::InvalidArgument(format!("bad ppm '{rate}' for fault site '{label}'"))
            })?;
            plan = plan.with_ppm(site, ppm);
        }
        Ok(plan)
    }

    /// Names accepted by [`FaultPlan::preset`]. The first is quiet; the
    /// rest are the adversarial plans the fault matrix runs.
    pub const PRESETS: [&'static str; 5] = [
        "quiet",
        "disk-grief",
        "cache-pressure",
        "framework-churn",
        "kitchen-sink",
    ];

    /// A named preset plan, or `None` for an unknown name.
    pub fn preset(name: &str) -> Option<FaultPlan> {
        let plan = match name {
            "quiet" => FaultPlan::quiet(),
            "disk-grief" => FaultPlan::quiet()
                .with_ppm(FaultSite::DiskTransientIo, 80_000)
                .with_ppm(FaultSite::DiskLatencySpike, 100_000)
                .with_ppm(FaultSite::DiskLatentError, 5_000),
            "cache-pressure" => FaultPlan::quiet()
                .with_ppm(FaultSite::CacheEvictionStorm, 150_000)
                .with_ppm(FaultSite::CacheWritebackFail, 200_000),
            "framework-churn" => FaultPlan::quiet()
                .with_ppm(FaultSite::DuetPathUnavailable, 250_000)
                .with_ppm(FaultSite::DuetSessionExhaustion, 500_000)
                .with_ppm(FaultSite::DuetSessionChurn, 20_000),
            "kitchen-sink" => FaultPlan::quiet()
                .with_ppm(FaultSite::DiskTransientIo, 40_000)
                .with_ppm(FaultSite::DiskLatencySpike, 50_000)
                .with_ppm(FaultSite::DiskLatentError, 2_000)
                .with_ppm(FaultSite::CacheEvictionStorm, 80_000)
                .with_ppm(FaultSite::CacheWritebackFail, 100_000)
                .with_ppm(FaultSite::DuetPathUnavailable, 150_000)
                .with_ppm(FaultSite::DuetSessionExhaustion, 250_000)
                .with_ppm(FaultSite::DuetSessionChurn, 10_000),
            _ => return None,
        };
        Some(plan)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.spec())
    }
}

/// The replay contract: everything needed to reproduce a faulted run.
///
/// Printed on any fault-related failure; feed the seed back through
/// `DUET_FAULT_SEED` (or construct the injector directly) to replay the
/// run bit-identically.
pub fn replay_line(seed: u64, plan: &FaultPlan) -> String {
    format!(
        "replay: DUET_FAULT_SEED={:#x} DUET_FAULT_PLAN=\"{}\"",
        seed,
        plan.spec()
    )
}

/// Reads a fault seed from the environment variable `var` (decimal or
/// `0x`-prefixed hex), falling back to `default` when unset or malformed.
/// Used by the fault-matrix suite to honour `DUET_FAULT_SEED`.
pub fn seed_from_env(var: &str, default: u64) -> u64 {
    match std::env::var(var) {
        Ok(raw) => {
            let raw = raw.trim();
            let parsed = if let Some(hex) = raw.strip_prefix("0x") {
                u64::from_str_radix(hex, 16)
            } else {
                raw.parse()
            };
            parsed.unwrap_or(default)
        }
        Err(_) => default,
    }
}

/// Turns a `(seed, plan)` pair into concrete, replayable injection
/// decisions. Each site draws from an independent RNG stream.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    seed: u64,
    plan: FaultPlan,
    streams: BTreeMap<FaultSite, SimRng>,
    fired: BTreeMap<FaultSite, u64>,
    trials: BTreeMap<FaultSite, u64>,
}

impl FaultInjector {
    /// A new injector for the given replay pair.
    pub fn new(seed: u64, plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            seed,
            plan,
            streams: BTreeMap::new(),
            fired: BTreeMap::new(),
            trials: BTreeMap::new(),
        }
    }

    fn stream(&mut self, site: FaultSite) -> &mut SimRng {
        let seed = self.seed;
        self.streams
            .entry(site)
            .or_insert_with(|| SimRng::new(seed ^ site.salt()))
    }

    /// Decide whether a fault fires at this opportunity. A site with
    /// rate zero never fires and never consumes randomness, so quiet
    /// runs are byte-identical to unfaulted ones.
    pub fn fire(&mut self, site: FaultSite) -> bool {
        *self.trials.entry(site).or_insert(0) += 1;
        let ppm = self.plan.ppm(site) as u64;
        if ppm == 0 {
            return false;
        }
        let hit = self.stream(site).gen_range(0, PPM_SCALE) < ppm;
        if hit {
            *self.fired.entry(site).or_insert(0) += 1;
        }
        hit
    }

    /// A deterministic magnitude draw in `lo..hi` from the site's own
    /// stream (e.g. how many extra pages an eviction storm sheds).
    pub fn amplitude(&mut self, site: FaultSite, lo: u64, hi: u64) -> u64 {
        self.stream(site).gen_range(lo, hi)
    }

    /// How many times a site has fired so far.
    pub fn fired(&self, site: FaultSite) -> u64 {
        self.fired.get(&site).copied().unwrap_or(0)
    }

    /// How many opportunities a site has seen so far.
    pub fn trials(&self, site: FaultSite) -> u64 {
        self.trials.get(&site).copied().unwrap_or(0)
    }

    /// Total faults fired across all sites.
    pub fn total_fired(&self) -> u64 {
        self.fired.values().sum()
    }

    /// The seed of the replay pair.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan of the replay pair.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The `(seed, plan)` line to print on failure.
    pub fn replay_line(&self) -> String {
        replay_line(self.seed, &self.plan)
    }
}

/// A cloneable, shared handle to one [`FaultInjector`]. Hand clones to
/// the disk, the page cache and the Duet framework so a single
/// `(seed, plan)` pair drives the whole stack.
#[derive(Debug, Clone)]
pub struct FaultHandle {
    inner: Rc<RefCell<FaultInjector>>,
}

impl FaultHandle {
    /// A new shared injector for the given replay pair.
    pub fn new(seed: u64, plan: FaultPlan) -> FaultHandle {
        FaultHandle {
            inner: Rc::new(RefCell::new(FaultInjector::new(seed, plan))),
        }
    }

    /// See [`FaultInjector::fire`].
    pub fn fire(&self, site: FaultSite) -> bool {
        self.inner.borrow_mut().fire(site)
    }

    /// See [`FaultInjector::amplitude`].
    pub fn amplitude(&self, site: FaultSite, lo: u64, hi: u64) -> u64 {
        self.inner.borrow_mut().amplitude(site, lo, hi)
    }

    /// See [`FaultInjector::fired`].
    pub fn fired(&self, site: FaultSite) -> u64 {
        self.inner.borrow().fired(site)
    }

    /// See [`FaultInjector::trials`].
    pub fn trials(&self, site: FaultSite) -> u64 {
        self.inner.borrow().trials(site)
    }

    /// See [`FaultInjector::total_fired`].
    pub fn total_fired(&self) -> u64 {
        self.inner.borrow().total_fired()
    }

    /// See [`FaultInjector::seed`].
    pub fn seed(&self) -> u64 {
        self.inner.borrow().seed()
    }

    /// A clone of the plan.
    pub fn plan(&self) -> FaultPlan {
        self.inner.borrow().plan().clone()
    }

    /// See [`FaultInjector::replay_line`].
    pub fn replay_line(&self) -> String {
        self.inner.borrow().replay_line()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips() {
        for name in FaultPlan::PRESETS {
            let plan = FaultPlan::preset(name).unwrap();
            let back = FaultPlan::parse(&plan.spec()).unwrap();
            assert_eq!(plan, back, "preset {name} must round-trip");
        }
        assert_eq!(FaultPlan::parse("quiet").unwrap(), FaultPlan::quiet());
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::quiet());
        assert!(FaultPlan::parse("bogus-site=5").is_err());
        assert!(FaultPlan::parse("disk-eio").is_err());
        assert!(FaultPlan::parse("disk-eio=notanumber").is_err());
    }

    #[test]
    fn quiet_sites_never_fire_or_draw() {
        let mut inj = FaultInjector::new(7, FaultPlan::quiet());
        for _ in 0..1000 {
            assert!(!inj.fire(FaultSite::DiskTransientIo));
        }
        assert_eq!(inj.total_fired(), 0);
        assert_eq!(inj.trials(FaultSite::DiskTransientIo), 1000);
        // No stream was ever created, so no randomness was consumed.
        assert!(inj.streams.is_empty());
    }

    #[test]
    fn replay_is_bit_identical() {
        let plan = FaultPlan::preset("kitchen-sink").unwrap();
        let mut a = FaultInjector::new(0xDEAD_BEEF, plan.clone());
        let mut b = FaultInjector::new(0xDEAD_BEEF, plan);
        for i in 0..4096u64 {
            let site = FaultSite::ALL[(i % 9) as usize];
            assert_eq!(a.fire(site), b.fire(site));
        }
        assert_eq!(a.total_fired(), b.total_fired());
        assert!(a.total_fired() > 0, "kitchen-sink must actually fire");
    }

    #[test]
    fn sites_draw_independent_streams() {
        // Firing site A between two draws of site B must not change
        // site B's decisions.
        let plan = FaultPlan::quiet()
            .with_ppm(FaultSite::DiskTransientIo, 500_000)
            .with_ppm(FaultSite::CacheEvictionStorm, 500_000);
        let mut interleaved = FaultInjector::new(99, plan.clone());
        let mut solo = FaultInjector::new(99, plan);
        let mut got = Vec::new();
        let mut want = Vec::new();
        for _ in 0..256 {
            interleaved.fire(FaultSite::DiskTransientIo);
            got.push(interleaved.fire(FaultSite::CacheEvictionStorm));
            want.push(solo.fire(FaultSite::CacheEvictionStorm));
        }
        assert_eq!(got, want);
    }

    #[test]
    fn replay_line_mentions_seed_and_plan() {
        let plan = FaultPlan::preset("disk-grief").unwrap();
        let line = replay_line(0xABC, &plan);
        assert!(line.contains("DUET_FAULT_SEED=0xabc"), "{line}");
        assert!(line.contains("disk-eio=80000"), "{line}");
    }

    #[test]
    fn seed_env_parsing() {
        // No env var set in tests: fall back to the default.
        assert_eq!(seed_from_env("DUET_FAULT_SEED_UNSET_FOR_TEST", 42), 42);
    }

    #[test]
    fn labels_round_trip() {
        for site in FaultSite::ALL {
            assert_eq!(FaultSite::from_label(site.label()), Some(site));
        }
        assert_eq!(FaultSite::from_label("nope"), None);
    }

    #[test]
    fn handle_shares_one_injector() {
        let plan = FaultPlan::quiet().with_ppm(FaultSite::ApiChaos, 1_000_000);
        let h = FaultHandle::new(1, plan);
        let h2 = h.clone();
        assert!(h.fire(FaultSite::ApiChaos));
        assert!(h2.fire(FaultSite::ApiChaos));
        assert_eq!(h.fired(FaultSite::ApiChaos), 2);
        assert_eq!(h2.trials(FaultSite::ApiChaos), 2);
    }
}
