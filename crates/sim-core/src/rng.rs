//! Deterministic random numbers and the sampling distributions used by
//! the workload generator.
//!
//! The simulation must be exactly reproducible from a seed, so we use a
//! self-contained xoshiro256** generator (seeded via SplitMix64) instead
//! of relying on the stability of any external crate's algorithm choice.
//!
//! Besides the raw generator, this module provides the distributions the
//! evaluation needs:
//!
//! - [`SimRng::gen_range`] — uniform integers, used by Filebench-style
//!   uniform file selection (§6.1.1);
//! - [`CdfSampler`] — sampling from an arbitrary discrete distribution
//!   via a precomputed CDF, used for the skewed Microsoft-trace file
//!   access distributions (Figure 1);
//! - [`zipf_weights`] — the Zipf-like weights used to synthesize those
//!   skewed distributions;
//! - [`SimRng::lognormal`] — file-size sampling for the file set.

/// A deterministic pseudo-random generator (xoshiro256**).
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl crate::snapshot::StateDigest for SimRng {
    fn digest_state(&self, d: &mut crate::snapshot::Digest) {
        // The four xoshiro words are the complete generator state: equal
        // digests imply identical future random streams.
        for w in self.s {
            d.write_u64(w);
        }
    }
}

impl SimRng {
    /// Creates a generator from a seed. Any seed, including zero, yields
    /// a well-distributed state via SplitMix64 expansion.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        SimRng {
            s: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range: empty range [{lo}, {hi})");
        let span = hi - lo;
        // Debiased multiply-shift (Lemire). The rejection loop terminates
        // quickly for any span.
        let threshold = span.wrapping_neg() % span;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (span as u128);
            if (m as u64) >= threshold {
                return lo + (m >> 64) as u64;
            }
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0) by shifting u1 away from zero.
        let u1 = (self.next_u64() >> 11) as f64 + 1.0;
        let u1 = u1 * (1.0 / (1u64 << 53) as f64);
        let u2 = self.gen_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Log-normal sample with the given log-space mean and deviation.
    ///
    /// File sizes in Filebench-style file sets follow a log-normal-like
    /// distribution; the workload crate uses this to populate the 50 GB
    /// file set of §6.1.3.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(0, i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.gen_range(0, items.len() as u64) as usize])
        }
    }
}

/// Zipf-like weights over `n` items with exponent `s`:
/// `w[i] = 1 / (i + 1)^s`.
///
/// `s = 0` degenerates to uniform; larger `s` concentrates accesses on
/// the first items. The Microsoft Production Build Server trace shapes in
/// Figure 1 are synthesized from these weights (see `workloads::mstrace`).
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect()
}

/// Samples indices from an arbitrary discrete distribution given by
/// non-negative weights, via binary search over the cumulative sum.
///
/// # Examples
///
/// ```
/// use sim_core::rng::{CdfSampler, SimRng};
///
/// let sampler = CdfSampler::new(&[1.0, 0.0, 3.0]);
/// let mut rng = SimRng::new(7);
/// let idx = sampler.sample(&mut rng);
/// assert!(idx == 0 || idx == 2); // index 1 has zero weight
/// ```
#[derive(Debug, Clone)]
pub struct CdfSampler {
    cdf: Vec<f64>,
    total: f64,
}

impl CdfSampler {
    /// Builds a sampler from weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "CdfSampler: no weights");
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "CdfSampler: bad weight {w}");
            acc += w;
            cdf.push(acc);
        }
        assert!(acc > 0.0, "CdfSampler: zero total weight");
        CdfSampler { cdf, total: acc }
    }

    /// Number of items in the distribution.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if the sampler has no items (never true for a
    /// constructed sampler; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one index.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let x = rng.gen_f64() * self.total;
        // partition_point returns the first index with cdf[i] > x.
        let i = self.cdf.partition_point(|&c| c <= x);
        i.min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::new(43);
        assert_ne!(SimRng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SimRng::new(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(10, 20);
            assert!((10..20).contains(&x));
        }
        // Single-element range.
        assert_eq!(rng.gen_range(5, 6), 5);
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = SimRng::new(2);
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.gen_range(0, 10) as usize] += 1;
        }
        for &c in &counts {
            // Each bucket should hold ~10% ± 1% of samples.
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SimRng::new(3);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut rng = SimRng::new(4);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = SimRng::new(5);
        for _ in 0..1_000 {
            assert!(rng.lognormal(10.0, 1.5) > 0.0);
        }
    }

    #[test]
    fn zipf_weights_decrease() {
        let w = zipf_weights(100, 1.0);
        assert_eq!(w.len(), 100);
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1]);
        }
        // s = 0 is uniform.
        let u = zipf_weights(10, 0.0);
        assert!(u.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn cdf_sampler_respects_weights() {
        let sampler = CdfSampler::new(&[8.0, 0.0, 2.0]);
        let mut rng = SimRng::new(6);
        let mut counts = [0u32; 3];
        let n = 100_000;
        for _ in 0..n {
            counts[sampler.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight item sampled");
        let frac0 = counts[0] as f64 / n as f64;
        assert!((frac0 - 0.8).abs() < 0.01, "frac0 {frac0}");
    }

    #[test]
    #[should_panic(expected = "zero total weight")]
    fn cdf_sampler_rejects_all_zero() {
        let _ = CdfSampler::new(&[0.0, 0.0]);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(7);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<u32>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn choose_handles_empty_and_nonempty() {
        let mut rng = SimRng::new(8);
        let empty: [u32; 0] = [];
        assert!(rng.choose(&empty).is_none());
        let items = [10, 20, 30];
        let got = *rng.choose(&items).unwrap();
        assert!(items.contains(&got));
    }
}
