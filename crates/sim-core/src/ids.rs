//! Strongly-typed identifiers used across the simulated storage stack.
//!
//! A page index, a block number and an inode number are all "just"
//! integers, and mixing them up is the easiest bug to write in a storage
//! simulator. Each identifier is therefore a distinct newtype. Arithmetic
//! that makes sense for an identifier (offsetting a block number, the
//! page index covering a byte offset) is provided as named methods rather
//! than operator overloads, keeping call sites explicit.

use crate::PAGE_SIZE;
use std::fmt;

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $inner);

        impl $name {
            /// Returns the raw integer value.
            pub const fn raw(self) -> $inner {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                $name(v)
            }
        }
    };
}

id_newtype!(
    /// A physical block number on a simulated device.
    ///
    /// Blocks are [`crate::PAGE_SIZE`] bytes, matching the paper's 4 KiB
    /// filesystem block size.
    BlockNr,
    u64,
    "blk#"
);

id_newtype!(
    /// An inode number, uniquely identifying a file or directory within
    /// one filesystem.
    InodeNr,
    u64,
    "ino#"
);

id_newtype!(
    /// A page index: the logical offset of a page within a file, in
    /// page-size units.
    PageIndex,
    u64,
    "pg#"
);

id_newtype!(
    /// A simulated block device identifier.
    DeviceId,
    u32,
    "dev#"
);

id_newtype!(
    /// A segment number in the log-structured (F2fs-style) filesystem.
    SegmentNr,
    u32,
    "seg#"
);

impl BlockNr {
    /// Returns the block `n` positions after this one.
    pub const fn offset(self, n: u64) -> BlockNr {
        BlockNr(self.0 + n)
    }

    /// Absolute distance between two block numbers, in blocks.
    ///
    /// Used by the HDD model to derive seek distance.
    pub const fn distance(self, other: BlockNr) -> u64 {
        self.0.abs_diff(other.0)
    }
}

impl PageIndex {
    /// Returns the page index that covers byte `offset` of a file.
    pub const fn of_byte_offset(offset: u64) -> PageIndex {
        PageIndex(offset / PAGE_SIZE)
    }

    /// Returns the byte offset of the first byte of this page.
    pub const fn byte_offset(self) -> u64 {
        self.0 * PAGE_SIZE
    }

    /// Returns the next page index.
    pub const fn next(self) -> PageIndex {
        PageIndex(self.0 + 1)
    }
}

/// Number of pages needed to hold `bytes` bytes (rounding up).
pub const fn pages_for_bytes(bytes: u64) -> u64 {
    bytes.div_ceil(PAGE_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newtypes_are_distinct_and_printable() {
        let b = BlockNr(7);
        let i = InodeNr(7);
        assert_eq!(b.raw(), i.raw());
        assert_eq!(format!("{b}"), "blk#7");
        assert_eq!(format!("{i}"), "ino#7");
        assert_eq!(format!("{:?}", PageIndex(3)), "pg#3");
        assert_eq!(format!("{}", DeviceId(1)), "dev#1");
        assert_eq!(format!("{}", SegmentNr(9)), "seg#9");
    }

    #[test]
    fn block_distance_is_symmetric() {
        assert_eq!(BlockNr(10).distance(BlockNr(4)), 6);
        assert_eq!(BlockNr(4).distance(BlockNr(10)), 6);
        assert_eq!(BlockNr(5).distance(BlockNr(5)), 0);
    }

    #[test]
    fn block_offset() {
        assert_eq!(BlockNr(10).offset(5), BlockNr(15));
    }

    #[test]
    fn page_index_byte_mapping() {
        assert_eq!(PageIndex::of_byte_offset(0), PageIndex(0));
        assert_eq!(PageIndex::of_byte_offset(PAGE_SIZE - 1), PageIndex(0));
        assert_eq!(PageIndex::of_byte_offset(PAGE_SIZE), PageIndex(1));
        assert_eq!(PageIndex(3).byte_offset(), 3 * PAGE_SIZE);
        assert_eq!(PageIndex(3).next(), PageIndex(4));
    }

    #[test]
    fn pages_for_bytes_rounds_up() {
        assert_eq!(pages_for_bytes(0), 0);
        assert_eq!(pages_for_bytes(1), 1);
        assert_eq!(pages_for_bytes(PAGE_SIZE), 1);
        assert_eq!(pages_for_bytes(PAGE_SIZE + 1), 2);
    }

    #[test]
    fn from_raw_integer() {
        let b: BlockNr = 42u64.into();
        assert_eq!(b, BlockNr(42));
    }
}
