//! Statistics helpers for the evaluation harness.
//!
//! The paper reports averages over three runs with 95 % confidence
//! intervals where variability is visible (§6.1.3, Table 6). These
//! helpers compute the same summary quantities.

/// Online mean/variance accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use sim_core::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 6.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 4.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for no samples).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance with Bessel's correction (0 for < 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (`NaN` if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest sample (`NaN` if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Half-width of the 95 % confidence interval for the mean, using
    /// the normal approximation (1.96 · s/√n). The paper's "±" figures
    /// (e.g. `11.67 ± 0.12 ms` in §6.1.3) are of this form.
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.stddev() / (self.n as f64).sqrt()
        }
    }
}

/// Percentile of a sample set via linear interpolation.
///
/// `p` is in `[0, 100]`. Returns `NaN` for an empty slice. The input does
/// not need to be sorted.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.ci95(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    fn known_moments() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4; sample variance is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!(s.ci95() > 0.0);
    }

    #[test]
    fn single_sample() {
        let mut s = OnlineStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert!((percentile(&v, 50.0) - 2.5).abs() < 1e-12);
        // Unsorted input is handled.
        let u = [4.0, 1.0, 3.0, 2.0];
        assert!((percentile(&u, 50.0) - 2.5).abs() < 1e-12);
        assert!(percentile(&[], 50.0).is_nan());
    }
}
