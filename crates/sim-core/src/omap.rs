//! Deterministic ordered map for the range-query hot paths.
//!
//! [`crate::dmap::DMap`] restored O(1) to the unordered hot paths, but
//! the btrfs extent map and free-space allocator are *ordered*
//! structures: they live on `range(..=p).next_back()` floor queries and
//! neighbour lookups that a hash table cannot answer. [`DOrdMap`]
//! covers that last gap — a sorted map whose layout is a **chunked
//! sorted vector** (an unrolled sorted list):
//!
//! - entries are stored in order across a `Vec` of fixed-capacity
//!   chunks, each chunk itself a sorted `Vec<(K, V)>`;
//! - lookup is two binary searches (chunk directory, then inside the
//!   chunk): O(log n) with at most two cache-line streams touched;
//! - insertion shifts only within one small chunk (amortized by chunk
//!   splitting at [`CHUNK_MAX`]), never the whole map;
//! - iteration walks dense arrays front to back — no pointer chasing,
//!   in key order by construction.
//!
//! Determinism: the map has **no seed at all**. Its layout and
//! iteration order are pure functions of the key order, so it cannot
//! leak host entropy the way `HashMap` can, and — unlike [`DMap`]'s
//! insertion-order iteration — its order is *sorted*, matching
//! `BTreeMap` exactly. The D2 lint sanctions it alongside the `dmap`
//! containers. Differential fuzzing against a `BTreeMap` oracle (see
//! `sim_core::check::differential`) pins the equivalence.
//!
//! [`DMap`]: crate::dmap::DMap

use std::fmt;
use std::ops::{Bound, RangeBounds};

/// Chunk split threshold. A chunk that reaches this many entries is
/// split in half; 64 entries of a `(u64, u64)`-sized payload span ~16
/// cache lines, small enough that the memmove on insert stays cheap and
/// large enough that the chunk directory stays tiny.
const CHUNK_MAX: usize = 64;

/// A deterministic, seed-free **ordered** map: chunked sorted vector
/// with O(log n) point lookups, amortized O(log n + B) inserts and
/// removals (B = chunk size), sorted cache-friendly iteration, and the
/// `range`/`next_back`/neighbour queries the extent and free-space maps
/// need.
///
/// # Examples
///
/// ```
/// use sim_core::omap::DOrdMap;
///
/// let mut m: DOrdMap<u64, &str> = DOrdMap::new();
/// m.insert(10, "ten");
/// m.insert(30, "thirty");
/// m.insert(20, "twenty");
/// let keys: Vec<u64> = m.keys().copied().collect();
/// assert_eq!(keys, vec![10, 20, 30]); // sorted, every run
/// assert_eq!(m.range(..=25).next_back(), Some((&20, &"twenty")));
/// assert_eq!(m.succ(&20), Some((&30, &"thirty")));
/// ```
#[derive(Clone)]
pub struct DOrdMap<K, V> {
    /// Non-empty sorted chunks; chunk minima strictly ascending.
    chunks: Vec<Vec<(K, V)>>,
    len: usize,
    /// Split threshold (constructor-tunable so tests can prove the
    /// layout parameter is unobservable).
    chunk_max: usize,
}

impl<K: Ord, V> Default for DOrdMap<K, V> {
    fn default() -> Self {
        DOrdMap::new()
    }
}

impl<K: fmt::Debug, V: fmt::Debug> fmt::Debug for DOrdMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.chunks.iter().flatten().map(|(k, v)| (k, v)))
            .finish()
    }
}

impl<K: Ord, V> DOrdMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::with_chunk_max(CHUNK_MAX)
    }

    /// Creates an empty map with an explicit chunk-split threshold.
    /// Observable behaviour is identical for any threshold ≥ 2; tests
    /// use this to prove the layout parameter never leaks.
    pub fn with_chunk_max(chunk_max: usize) -> Self {
        DOrdMap {
            chunks: Vec::new(),
            len: 0,
            chunk_max: chunk_max.max(2),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.chunks.clear();
        self.len = 0;
    }

    /// Chunk that may contain `key`: the last chunk whose minimum is
    /// `<= key`, or `None` when the map is empty or `key` precedes
    /// every entry.
    #[inline]
    fn chunk_of(&self, key: &K) -> Option<usize> {
        let ci = self.chunks.partition_point(|c| c[0].0 <= *key);
        ci.checked_sub(1)
    }

    /// Exact position of `key`, if present.
    #[inline]
    fn locate(&self, key: &K) -> Option<(usize, usize)> {
        let ci = self.chunk_of(key)?;
        self.chunks[ci]
            .binary_search_by(|e| e.0.cmp(key))
            .ok()
            .map(|si| (ci, si))
    }

    /// First position whose key is `>= key` ((chunks.len(), 0) = end).
    fn lower_bound(&self, key: &K) -> (usize, usize) {
        let ci = self
            .chunks
            .partition_point(|c| c.last().map(|e| e.0 < *key).unwrap_or(false));
        if ci == self.chunks.len() {
            return (ci, 0);
        }
        (ci, self.chunks[ci].partition_point(|e| e.0 < *key))
    }

    /// First position whose key is `> key` ((chunks.len(), 0) = end).
    fn upper_bound(&self, key: &K) -> (usize, usize) {
        let ci = self
            .chunks
            .partition_point(|c| c.last().map(|e| e.0 <= *key).unwrap_or(false));
        if ci == self.chunks.len() {
            return (ci, 0);
        }
        (ci, self.chunks[ci].partition_point(|e| e.0 <= *key))
    }

    /// Number of entries strictly before `pos`.
    fn rank(&self, pos: (usize, usize)) -> usize {
        self.chunks[..pos.0].iter().map(Vec::len).sum::<usize>() + pos.1
    }

    /// Looks a key up.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.locate(key).map(|(ci, si)| &self.chunks[ci][si].1)
    }

    /// Looks a key up, mutably.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.locate(key).map(|(ci, si)| &mut self.chunks[ci][si].1)
    }

    /// Returns `true` if the key is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.locate(key).is_some()
    }

    /// Inserts or replaces. Returns the previous value if the key was
    /// present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        if self.chunks.is_empty() {
            self.chunks.push(vec![(key, value)]);
            self.len = 1;
            return None;
        }
        // Entries before the first chunk's minimum go into chunk 0.
        let ci = self.chunk_of(&key).unwrap_or(0);
        match self.chunks[ci].binary_search_by(|e| e.0.cmp(&key)) {
            Ok(si) => Some(std::mem::replace(&mut self.chunks[ci][si].1, value)),
            Err(si) => {
                self.chunks[ci].insert(si, (key, value));
                self.len += 1;
                if self.chunks[ci].len() >= self.chunk_max {
                    let tail = self.chunks[ci].split_off(self.chunk_max / 2);
                    self.chunks.insert(ci + 1, tail);
                }
                None
            }
        }
    }

    /// Removes a key. Returns its value if it was present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let (ci, si) = self.locate(key)?;
        let (_, value) = self.chunks[ci].remove(si);
        self.len -= 1;
        if self.chunks[ci].is_empty() {
            self.chunks.remove(ci);
        }
        Some(value)
    }

    /// First (smallest-key) entry.
    pub fn first_key_value(&self) -> Option<(&K, &V)> {
        self.chunks.first().map(|c| (&c[0].0, &c[0].1))
    }

    /// Last (largest-key) entry.
    pub fn last_key_value(&self) -> Option<(&K, &V)> {
        self.chunks
            .last()
            .and_then(|c| c.last())
            .map(|e| (&e.0, &e.1))
    }

    /// Largest entry with key `<= key` (floor neighbour).
    pub fn floor(&self, key: &K) -> Option<(&K, &V)> {
        let pos = self.upper_bound(key);
        if self.rank(pos) == 0 {
            return None;
        }
        let (ci, si) = self.pred_pos(pos);
        self.entry_at(ci, si)
    }

    /// Smallest entry with key `>= key` (ceiling neighbour).
    pub fn ceil(&self, key: &K) -> Option<(&K, &V)> {
        let (ci, si) = self.lower_bound(key);
        self.entry_at(ci, si)
    }

    /// Largest entry with key strictly `< key` (predecessor).
    pub fn pred(&self, key: &K) -> Option<(&K, &V)> {
        let pos = self.lower_bound(key);
        if self.rank(pos) == 0 {
            return None;
        }
        let (ci, si) = self.pred_pos(pos);
        self.entry_at(ci, si)
    }

    /// Smallest entry with key strictly `> key` (successor).
    pub fn succ(&self, key: &K) -> Option<(&K, &V)> {
        let (ci, si) = self.upper_bound(key);
        self.entry_at(ci, si)
    }

    #[inline]
    fn entry_at(&self, ci: usize, si: usize) -> Option<(&K, &V)> {
        self.chunks
            .get(ci)
            .and_then(|c| c.get(si))
            .map(|e| (&e.0, &e.1))
    }

    /// Position immediately before `pos`; caller guarantees one exists.
    #[inline]
    fn pred_pos(&self, pos: (usize, usize)) -> (usize, usize) {
        if pos.1 > 0 {
            (pos.0, pos.1 - 1)
        } else {
            (pos.0 - 1, self.chunks[pos.0 - 1].len() - 1)
        }
    }

    /// Iterates entries in ascending key order (double-ended).
    pub fn iter(&self) -> Iter<'_, K, V> {
        self.range(..)
    }

    /// Iterates keys in ascending order.
    pub fn keys(&self) -> impl DoubleEndedIterator<Item = &K> {
        self.iter().map(|(k, _)| k)
    }

    /// Iterates values in ascending key order.
    pub fn values(&self) -> impl DoubleEndedIterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }

    /// Iterates the entries whose keys fall in `range`, in ascending
    /// key order (double-ended — `range(..=p).next_back()` is the floor
    /// query). An inverted range yields an empty iterator.
    pub fn range<R: RangeBounds<K>>(&self, range: R) -> Iter<'_, K, V> {
        let front = match range.start_bound() {
            Bound::Unbounded => (0, 0),
            Bound::Included(k) => self.lower_bound(k),
            Bound::Excluded(k) => self.upper_bound(k),
        };
        let end = match range.end_bound() {
            Bound::Unbounded => (self.chunks.len(), 0),
            Bound::Included(k) => self.upper_bound(k),
            Bound::Excluded(k) => self.lower_bound(k),
        };
        let remaining = self.rank(end).saturating_sub(self.rank(front));
        let back = if remaining == 0 {
            (0, 0)
        } else {
            self.pred_pos(end)
        };
        Iter {
            chunks: &self.chunks,
            front,
            back,
            remaining,
        }
    }
}

/// Double-ended iterator over a [`DOrdMap`] (also the `range` view).
pub struct Iter<'a, K, V> {
    chunks: &'a [Vec<(K, V)>],
    /// Next front position.
    front: (usize, usize),
    /// Next back position (inclusive; valid while `remaining > 0`).
    back: (usize, usize),
    remaining: usize,
}

impl<'a, K, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let (ci, si) = self.front;
        let e = &self.chunks[ci][si];
        self.front = if si + 1 < self.chunks[ci].len() {
            (ci, si + 1)
        } else {
            (ci + 1, 0)
        };
        Some((&e.0, &e.1))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<K, V> DoubleEndedIterator for Iter<'_, K, V> {
    fn next_back(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let (ci, si) = self.back;
        let e = &self.chunks[ci][si];
        if self.remaining > 0 {
            self.back = if si > 0 {
                (ci, si - 1)
            } else {
                (ci - 1, self.chunks[ci - 1].len() - 1)
            };
        }
        Some((&e.0, &e.1))
    }
}

impl<K, V> ExactSizeIterator for Iter<'_, K, V> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;
    use std::collections::BTreeMap;
    use std::ops::Bound;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: DOrdMap<u64, u64> = DOrdMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(5, 50), None);
        assert_eq!(m.insert(5, 51), Some(50));
        assert_eq!(m.get(&5), Some(&51));
        assert!(m.contains_key(&5));
        *m.get_mut(&5).unwrap() += 1;
        assert_eq!(m.remove(&5), Some(52));
        assert_eq!(m.remove(&5), None);
        assert!(m.is_empty());
    }

    #[test]
    fn iteration_is_key_sorted() {
        let mut m: DOrdMap<u64, u64> = DOrdMap::new();
        for k in [9u64, 2, 77, 31, 5, 1000, 0] {
            m.insert(k, k * 10);
        }
        let keys: Vec<u64> = m.keys().copied().collect();
        assert_eq!(keys, vec![0, 2, 5, 9, 31, 77, 1000]);
        let back: Vec<u64> = m.keys().rev().copied().collect();
        assert_eq!(back, vec![1000, 77, 31, 9, 5, 2, 0]);
        assert_eq!(m.first_key_value(), Some((&0, &0)));
        assert_eq!(m.last_key_value(), Some((&1000, &10000)));
    }

    #[test]
    fn range_queries_match_btreemap() {
        let mut m: DOrdMap<u64, u64> = DOrdMap::with_chunk_max(4);
        let mut r: BTreeMap<u64, u64> = BTreeMap::new();
        for k in (0..100u64).step_by(3) {
            m.insert(k, k);
            r.insert(k, k);
        }
        for lo in 0..40u64 {
            for hi in lo..40u64 {
                let got: Vec<u64> = m.range(lo..hi).map(|(k, _)| *k).collect();
                let want: Vec<u64> = r.range(lo..hi).map(|(k, _)| *k).collect();
                assert_eq!(got, want, "range {lo}..{hi}");
                assert_eq!(
                    m.range(..=hi).next_back(),
                    r.range(..=hi).next_back(),
                    "floor via range(..={hi}).next_back()"
                );
                assert_eq!(
                    m.range(lo..).next(),
                    r.range(lo..).next(),
                    "ceil via range({lo}..).next()"
                );
            }
        }
        // Excluded start bound, as in range((Excluded(a), Unbounded)).
        let got: Vec<u64> = m
            .range((Bound::Excluded(9u64), Bound::Unbounded))
            .take(2)
            .map(|(k, _)| *k)
            .collect();
        assert_eq!(got, vec![12, 15]);
    }

    #[test]
    fn neighbour_queries() {
        let mut m: DOrdMap<u64, u64> = DOrdMap::with_chunk_max(3);
        for k in [10u64, 20, 30] {
            m.insert(k, k);
        }
        assert_eq!(m.floor(&25), Some((&20, &20)));
        assert_eq!(m.floor(&20), Some((&20, &20)));
        assert_eq!(m.floor(&9), None);
        assert_eq!(m.ceil(&25), Some((&30, &30)));
        assert_eq!(m.ceil(&30), Some((&30, &30)));
        assert_eq!(m.ceil(&31), None);
        assert_eq!(m.pred(&20), Some((&10, &10)));
        assert_eq!(m.pred(&10), None);
        assert_eq!(m.succ(&20), Some((&30, &30)));
        assert_eq!(m.succ(&30), None);
    }

    #[test]
    fn double_ended_meets_in_the_middle() {
        let mut m: DOrdMap<u64, u64> = DOrdMap::with_chunk_max(3);
        for k in 0..10u64 {
            m.insert(k, k);
        }
        let mut it = m.iter();
        assert_eq!(it.next().map(|(k, _)| *k), Some(0));
        assert_eq!(it.next_back().map(|(k, _)| *k), Some(9));
        assert_eq!(it.len(), 8);
        let rest: Vec<u64> = it.map(|(k, _)| *k).collect();
        assert_eq!(rest, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn chunk_size_is_unobservable() {
        // The layout parameter must never change observable behaviour —
        // the analogue of DMap's seed-independence test.
        let mut small: DOrdMap<u64, u64> = DOrdMap::with_chunk_max(2);
        let mut big: DOrdMap<u64, u64> = DOrdMap::with_chunk_max(512);
        let mut rng = SimRng::new(0x0DD);
        for _ in 0..3000 {
            let k = rng.gen_range(0, 96);
            match rng.gen_range(0, 4) {
                0 | 1 => assert_eq!(small.insert(k, k * 3), big.insert(k, k * 3)),
                2 => assert_eq!(small.remove(&k), big.remove(&k)),
                _ => {
                    assert_eq!(small.get(&k), big.get(&k));
                    assert_eq!(small.floor(&k), big.floor(&k));
                    assert_eq!(small.succ(&k), big.succ(&k));
                }
            }
            assert_eq!(
                small.iter().collect::<Vec<_>>(),
                big.iter().collect::<Vec<_>>(),
                "iteration must not depend on chunk layout"
            );
        }
    }

    #[test]
    fn excluded_bounds_at_chunk_boundaries() {
        // chunk_max 4 ⇒ chunks split early and often, so bound keys
        // land on first/last entries of chunks. Every bound-kind
        // combination must match the BTreeMap oracle (valid ranges) or
        // yield an empty iterator with an exact zero size hint
        // (ranges the oracle would panic on).
        let mut m: DOrdMap<u64, u64> = DOrdMap::with_chunk_max(4);
        let mut r: BTreeMap<u64, u64> = BTreeMap::new();
        for k in (0..40u64).step_by(2) {
            m.insert(k, k + 1);
            r.insert(k, k + 1);
        }
        let bound = |kind: u8, k: u64| match kind {
            0 => Bound::Included(k),
            1 => Bound::Excluded(k),
            _ => Bound::Unbounded,
        };
        for lo in 0..24u64 {
            for hi in 0..24u64 {
                for lk in 0..3u8 {
                    for hk in 0..3u8 {
                        let range = (bound(lk, lo), bound(hk, hi));
                        // BTreeMap::range panics on start > end, and on
                        // start == end with both bounds excluded.
                        let oracle_ok =
                            lk == 2 || hk == 2 || lo < hi || (lo == hi && !(lk == 1 && hk == 1));
                        let it = m.range(range);
                        let n = it.len();
                        assert_eq!(it.size_hint(), (n, Some(n)), "{range:?}");
                        let got: Vec<u64> = m.range(range).map(|(k, _)| *k).collect();
                        if oracle_ok {
                            let want: Vec<u64> = r.range(range).map(|(k, _)| *k).collect();
                            assert_eq!(got, want, "{range:?}");
                            assert_eq!(n, want.len(), "{range:?}");
                            let got_rev: Vec<u64> = m.range(range).rev().map(|(k, _)| *k).collect();
                            let want_rev: Vec<u64> =
                                r.range(range).rev().map(|(k, _)| *k).collect();
                            assert_eq!(got_rev, want_rev, "{range:?} reversed");
                        } else {
                            assert!(got.is_empty(), "inverted {range:?} must be empty");
                            assert_eq!(n, 0, "{range:?}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn size_hint_is_exact_after_mixed_consumption() {
        let mut m: DOrdMap<u64, u64> = DOrdMap::with_chunk_max(3);
        for k in 0..11u64 {
            m.insert(k, k * 2);
        }
        // Alternate front/back consumption; after every step the
        // ExactSizeIterator contract must hold exactly.
        let mut it = m.range(1..10); // keys 1..=9, nine entries
        let mut want: std::collections::VecDeque<u64> = (1..10).collect();
        let mut from_back = false;
        loop {
            let n = want.len();
            assert_eq!(it.len(), n);
            assert_eq!(it.size_hint(), (n, Some(n)));
            let (got, expect) = if from_back {
                (it.next_back().map(|(k, _)| *k), want.pop_back())
            } else {
                (it.next().map(|(k, _)| *k), want.pop_front())
            };
            assert_eq!(got, expect);
            if got.is_none() {
                break;
            }
            from_back = !from_back;
        }
        // Exhausted from both ends: stays empty in both directions.
        assert_eq!(it.size_hint(), (0, Some(0)));
        assert_eq!(it.next(), None);
        assert_eq!(it.next_back(), None);
    }

    #[test]
    fn empty_and_inverted_ranges() {
        let mut m: DOrdMap<u64, u64> = DOrdMap::new();
        assert_eq!(m.iter().next(), None);
        assert_eq!(m.range(3..7).next_back(), None);
        assert_eq!(m.floor(&5), None);
        m.insert(5, 5);
        let lo = 7;
        assert_eq!(m.range(lo..3).count(), 0, "inverted range is empty");
        assert_eq!(m.range(6..6).count(), 0);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(&5), None);
        m.insert(1, 1);
        assert_eq!(m.len(), 1);
    }
}
