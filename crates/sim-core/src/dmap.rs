//! Deterministic O(1) hot-path containers.
//!
//! PR 1 banned `std::collections::HashMap` from event/result paths
//! (lint rule D2): its iteration order depends on a per-process random
//! hasher state, so any loop over one can leak host entropy into
//! simulated results. The fix at the time — `BTreeMap` everywhere —
//! bought determinism at the price of O(log n) plus pointer chasing on
//! every simulated page touch.
//!
//! This module restores O(1) without reopening the determinism hole:
//!
//! - [`DMap`]/[`DSet`]: open-addressing hash containers whose hash
//!   function ([`DetHash`]) is *seeded by a compile-time constant* —
//!   no `RandomState`, no ASLR, no wall clock — and whose iteration
//!   order is the **dense insertion order** of a side `Vec`, a pure
//!   function of the operation sequence. Same ops, same order, on
//!   every machine, forever. The D2 lint sanctions these as the
//!   workspace's deterministic hash containers.
//! - [`Slab`]: an arena with stable `u32` handles and a free list, the
//!   backing store for intrusive structures (the page cache's
//!   doubly-linked LRU chains index into one).
//!
//! Iteration order caveat: insertion order is deterministic but *not*
//! sorted. A call site whose iteration order escapes into golden
//! output and must be sorted (e.g. the page cache's registration scan)
//! sorts the collected keys explicitly — O(k log k) on the cold path,
//! instead of O(log n) on every hot-path touch.

use std::borrow::Borrow;
use std::fmt;

/// Fixed hash seed: an arbitrary odd constant, deliberately *not*
/// derived from any ambient source. Changing it changes bucket layout
/// but no observable behaviour (iteration is insertion-ordered).
const DEFAULT_SEED: u64 = 0x5EED_0FD0_E700_0001;

/// Sentinel bucket value: empty slot.
const EMPTY: u32 = u32::MAX;

/// Grow when `len * 8 >= buckets * 7` (87.5 % load).
const LOAD_NUM: usize = 7;
const LOAD_DEN: usize = 8;

/// Deterministic hashing: a pure function of the value and an explicit
/// seed. Implementors must not consult any ambient state.
pub trait DetHash {
    /// Hashes `self` under `seed`. The result must be fully mixed (all
    /// 64 bits usable); use [`mix64`] as the finalizer.
    fn det_hash(&self, seed: u64) -> u64;
}

/// SplitMix64 finalizer: a full-avalanche 64-bit mix.
#[inline]
pub fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

macro_rules! dethash_int {
    ($($t:ty),*) => {$(
        impl DetHash for $t {
            #[inline]
            fn det_hash(&self, seed: u64) -> u64 {
                mix64(*self as u64 ^ seed)
            }
        }
    )*};
}
dethash_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl DetHash for str {
    #[inline]
    fn det_hash(&self, seed: u64) -> u64 {
        // FNV-1a over the bytes, seed folded into the offset basis.
        // `str`, `&str` and `String` must hash identically so a
        // `DMap<String, _>` can be probed with a borrowed `&str`.
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
        for &b in self.as_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        mix64(h)
    }
}

impl DetHash for &str {
    #[inline]
    fn det_hash(&self, seed: u64) -> u64 {
        (**self).det_hash(seed)
    }
}

impl DetHash for String {
    #[inline]
    fn det_hash(&self, seed: u64) -> u64 {
        self.as_str().det_hash(seed)
    }
}

impl<A: DetHash, B: DetHash> DetHash for (A, B) {
    #[inline]
    fn det_hash(&self, seed: u64) -> u64 {
        let a = self.0.det_hash(seed);
        self.1.det_hash(mix64(a ^ seed))
    }
}

impl DetHash for crate::BlockNr {
    #[inline]
    fn det_hash(&self, seed: u64) -> u64 {
        self.raw().det_hash(seed)
    }
}

impl DetHash for crate::InodeNr {
    #[inline]
    fn det_hash(&self, seed: u64) -> u64 {
        self.raw().det_hash(seed)
    }
}

impl DetHash for crate::PageIndex {
    #[inline]
    fn det_hash(&self, seed: u64) -> u64 {
        self.raw().det_hash(seed)
    }
}

impl DetHash for crate::DeviceId {
    #[inline]
    fn det_hash(&self, seed: u64) -> u64 {
        (self.raw() as u64).det_hash(seed)
    }
}

impl DetHash for crate::SegmentNr {
    #[inline]
    fn det_hash(&self, seed: u64) -> u64 {
        (self.raw() as u64).det_hash(seed)
    }
}

/// A deterministic open-addressing hash map.
///
/// Entries live densely in a `Vec` in insertion order; a flat bucket
/// table of `u32` indexes provides O(1) expected lookup via linear
/// probing with backward-shift deletion (no tombstones, so probe
/// chains never rot). Removal swap-fills the dense array, so iteration
/// order after a removal is still a pure function of the op sequence —
/// deterministic, though no longer the literal insertion order.
///
/// # Examples
///
/// ```
/// use sim_core::dmap::DMap;
///
/// let mut m: DMap<u64, &str> = DMap::new();
/// m.insert(7, "seven");
/// m.insert(9, "nine");
/// assert_eq!(m.get(&7), Some(&"seven"));
/// let keys: Vec<u64> = m.iter().map(|(k, _)| *k).collect();
/// assert_eq!(keys, vec![7, 9]); // insertion order, every run
/// ```
#[derive(Clone)]
pub struct DMap<K, V> {
    seed: u64,
    /// Dense storage in (post-removal) insertion order.
    entries: Vec<(K, V)>,
    /// Flat probe table: index into `entries`, or `EMPTY`. Length is a
    /// power of two (or zero before first insert).
    buckets: Vec<u32>,
}

impl<K: DetHash + Eq, V> Default for DMap<K, V> {
    fn default() -> Self {
        DMap::new()
    }
}

impl<K: fmt::Debug, V: fmt::Debug> fmt::Debug for DMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.entries.iter().map(|(k, v)| (k, v)))
            .finish()
    }
}

impl<K: DetHash + Eq, V> DMap<K, V> {
    /// Creates an empty map with the fixed default seed.
    pub fn new() -> Self {
        Self::with_seed(DEFAULT_SEED)
    }

    /// Creates an empty map with an explicit seed (tests use this to
    /// prove observable behaviour is seed-independent).
    pub fn with_seed(seed: u64) -> Self {
        DMap {
            seed,
            entries: Vec::new(),
            buckets: Vec::new(),
        }
    }

    /// Creates an empty map pre-sized for `cap` entries.
    pub fn with_capacity(cap: usize) -> Self {
        let mut m = Self::new();
        m.entries.reserve(cap);
        m.grow_to(cap);
        m
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes all entries, keeping allocations.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.buckets.iter_mut().for_each(|b| *b = EMPTY);
    }

    #[inline]
    fn mask(&self) -> usize {
        self.buckets.len() - 1
    }

    /// Probes for `key`. Returns `(bucket, Some(entry_idx))` on a hit
    /// or `(first_empty_bucket, None)` on a miss. Requires non-empty
    /// `buckets`. Generic over the borrowed form of the key (`&str`
    /// probing a `String`-keyed map), which must hash identically.
    #[inline]
    fn probe<Q>(&self, key: &Q) -> (usize, Option<usize>)
    where
        K: Borrow<Q>,
        Q: DetHash + Eq + ?Sized,
    {
        let mask = self.mask();
        let mut b = (key.det_hash(self.seed) as usize) & mask;
        loop {
            let slot = self.buckets[b];
            if slot == EMPTY {
                return (b, None);
            }
            let idx = slot as usize;
            if self.entries[idx].0.borrow() == key {
                return (b, Some(idx));
            }
            b = (b + 1) & mask;
        }
    }

    /// Ensures the bucket table can absorb `want` entries within the
    /// load factor, rehashing if necessary.
    fn grow_to(&mut self, want: usize) {
        let mut cap = self.buckets.len().max(8);
        while want * LOAD_DEN >= cap * LOAD_NUM {
            cap *= 2;
        }
        if cap == self.buckets.len() {
            return;
        }
        self.buckets = vec![EMPTY; cap];
        let mask = cap - 1;
        for (idx, (k, _)) in self.entries.iter().enumerate() {
            let mut b = (k.det_hash(self.seed) as usize) & mask;
            while self.buckets[b] != EMPTY {
                b = (b + 1) & mask;
            }
            self.buckets[b] = idx as u32;
        }
    }

    /// Inserts or replaces. Returns the previous value if the key was
    /// present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.grow_to(self.entries.len() + 1);
        let (b, hit) = self.probe(&key);
        match hit {
            Some(idx) => Some(std::mem::replace(&mut self.entries[idx].1, value)),
            None => {
                self.buckets[b] = self.entries.len() as u32;
                self.entries.push((key, value));
                None
            }
        }
    }

    /// Looks a key up. Accepts the key's borrowed form, like
    /// `BTreeMap::get` (`map_of_strings.get("name")`).
    #[inline]
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: DetHash + Eq + ?Sized,
    {
        if self.buckets.is_empty() {
            return None;
        }
        let (_, hit) = self.probe(key);
        hit.map(|idx| &self.entries[idx].1)
    }

    /// Looks a key up, mutably.
    #[inline]
    pub fn get_mut<Q>(&mut self, key: &Q) -> Option<&mut V>
    where
        K: Borrow<Q>,
        Q: DetHash + Eq + ?Sized,
    {
        if self.buckets.is_empty() {
            return None;
        }
        let (_, hit) = self.probe(key);
        hit.map(|idx| &mut self.entries[idx].1)
    }

    /// Returns `true` if the key is present.
    #[inline]
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: DetHash + Eq + ?Sized,
    {
        !self.buckets.is_empty() && self.probe(key).1.is_some()
    }

    /// Returns a mutable reference to `key`'s value, inserting
    /// `default()` first if absent.
    pub fn get_or_insert_with<F: FnOnce() -> V>(&mut self, key: K, default: F) -> &mut V {
        self.grow_to(self.entries.len() + 1);
        let (b, hit) = self.probe(&key);
        let idx = match hit {
            Some(idx) => idx,
            None => {
                let idx = self.entries.len();
                self.buckets[b] = idx as u32;
                self.entries.push((key, default()));
                idx
            }
        };
        &mut self.entries[idx].1
    }

    /// Removes a key. Returns its value if it was present.
    ///
    /// O(1): the dense array swap-fills from its tail, and the bucket
    /// table repairs its probe chain by backward shifting (the
    /// tombstone-free deletion of ordered open addressing).
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: DetHash + Eq + ?Sized,
    {
        if self.buckets.is_empty() {
            return None;
        }
        let (b, hit) = self.probe(key);
        let idx = hit?;
        // Backward-shift the probe chain over the vacated bucket.
        let mask = self.mask();
        let mut hole = b;
        let mut j = b;
        loop {
            j = (j + 1) & mask;
            let slot = self.buckets[j];
            if slot == EMPTY {
                break;
            }
            let ideal = (self.entries[slot as usize].0.det_hash(self.seed) as usize) & mask;
            // `slot` may move back into `hole` only if its ideal bucket
            // is not circularly between hole (exclusive) and j
            // (inclusive) — i.e. the displacement from ideal to j is at
            // least the distance from hole to j.
            if (j.wrapping_sub(ideal) & mask) >= (j.wrapping_sub(hole) & mask) {
                self.buckets[hole] = slot;
                hole = j;
            }
        }
        self.buckets[hole] = EMPTY;
        // Swap-fill the dense array; repoint the moved entry's bucket.
        let last = self.entries.len() - 1;
        let (_, value) = self.entries.swap_remove(idx);
        if idx != last {
            let moved_key = &self.entries[idx].0;
            let mut mb = (moved_key.det_hash(self.seed) as usize) & mask;
            while self.buckets[mb] != last as u32 {
                mb = (mb + 1) & mask;
            }
            self.buckets[mb] = idx as u32;
        }
        Some(value)
    }

    /// Iterates entries in dense (deterministic) order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates entries mutably in dense (deterministic) order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&K, &mut V)> {
        self.entries.iter_mut().map(|(k, v)| (&*k, v))
    }

    /// Iterates keys in dense (deterministic) order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates values in dense (deterministic) order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, v)| v)
    }
}

/// A deterministic open-addressing hash set (a [`DMap`] with unit
/// values).
///
/// # Examples
///
/// ```
/// use sim_core::dmap::DSet;
///
/// let mut s: DSet<u64> = DSet::new();
/// assert!(s.insert(3));
/// assert!(!s.insert(3));
/// assert!(s.contains(&3));
/// assert!(s.remove(&3));
/// assert!(s.is_empty());
/// ```
#[derive(Clone)]
pub struct DSet<K> {
    map: DMap<K, ()>,
}

impl<K: DetHash + Eq> Default for DSet<K> {
    fn default() -> Self {
        DSet::new()
    }
}

impl<K: fmt::Debug + DetHash + Eq> fmt::Debug for DSet<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.map.keys()).finish()
    }
}

impl<K: DetHash + Eq> DSet<K> {
    /// Creates an empty set.
    pub fn new() -> Self {
        DSet { map: DMap::new() }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Adds a member. Returns `true` if it was newly added.
    pub fn insert(&mut self, key: K) -> bool {
        self.map.insert(key, ()).is_none()
    }

    /// Removes a member. Returns `true` if it was present.
    pub fn remove<Q>(&mut self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: DetHash + Eq + ?Sized,
    {
        self.map.remove(key).is_some()
    }

    /// Membership test. Accepts the key's borrowed form.
    #[inline]
    pub fn contains<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: DetHash + Eq + ?Sized,
    {
        self.map.contains_key(key)
    }

    /// Removes all members, keeping allocations.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Iterates members in dense (deterministic) order.
    pub fn iter(&self) -> impl Iterator<Item = &K> {
        self.map.keys()
    }
}

/// Handle value meaning "no slot" — usable as a list terminator by
/// intrusive structures built over a [`Slab`].
pub const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
enum Slot<T> {
    Occupied(T),
    /// Free slot, holding the next free handle (or [`NIL`]).
    Free(u32),
}

/// A slab arena with stable `u32` handles.
///
/// Insertions reuse freed slots (LIFO free list), so handles are dense
/// and allocation is O(1) with no per-node heap traffic — the backing
/// store for intrusive linked structures like the page cache's LRU
/// chains. Handles are stable: a slot's handle never changes while it
/// is occupied.
///
/// # Examples
///
/// ```
/// use sim_core::dmap::Slab;
///
/// let mut slab: Slab<&str> = Slab::new();
/// let h = slab.insert("hello");
/// assert_eq!(slab.get(h), Some(&"hello"));
/// assert_eq!(slab.remove(h), Some("hello"));
/// assert_eq!(slab.get(h), None);
/// ```
#[derive(Debug, Clone)]
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free: u32,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: NIL,
            len: 0,
        }
    }

    /// Creates an empty slab pre-sized for `cap` values.
    pub fn with_capacity(cap: usize) -> Self {
        let mut s = Self::new();
        s.slots.reserve(cap);
        s
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Stores a value, returning its stable handle.
    pub fn insert(&mut self, value: T) -> u32 {
        self.len += 1;
        if self.free == NIL {
            self.slots.push(Slot::Occupied(value));
            (self.slots.len() - 1) as u32
        } else {
            let h = self.free;
            let slot = &mut self.slots[h as usize];
            if let Slot::Free(next) = *slot {
                self.free = next;
            }
            *slot = Slot::Occupied(value);
            h
        }
    }

    /// Removes a handle's value, freeing the slot for reuse.
    pub fn remove(&mut self, handle: u32) -> Option<T> {
        let slot = self.slots.get_mut(handle as usize)?;
        if matches!(slot, Slot::Free(_)) {
            return None;
        }
        let old = std::mem::replace(slot, Slot::Free(self.free));
        self.free = handle;
        self.len -= 1;
        match old {
            Slot::Occupied(v) => Some(v),
            Slot::Free(_) => None,
        }
    }

    /// Borrows a handle's value.
    #[inline]
    pub fn get(&self, handle: u32) -> Option<&T> {
        match self.slots.get(handle as usize) {
            Some(Slot::Occupied(v)) => Some(v),
            _ => None,
        }
    }

    /// Borrows a handle's value mutably.
    #[inline]
    pub fn get_mut(&mut self, handle: u32) -> Option<&mut T> {
        match self.slots.get_mut(handle as usize) {
            Some(Slot::Occupied(v)) => Some(v),
            _ => None,
        }
    }
}

impl<T> std::ops::Index<u32> for Slab<T> {
    type Output = T;
    #[inline]
    fn index(&self, handle: u32) -> &T {
        match &self.slots[handle as usize] {
            Slot::Occupied(v) => v,
            Slot::Free(_) => unreachable!("slab handle {handle} is vacant"),
        }
    }
}

impl<T> std::ops::IndexMut<u32> for Slab<T> {
    #[inline]
    fn index_mut(&mut self, handle: u32) -> &mut T {
        match &mut self.slots[handle as usize] {
            Slot::Occupied(v) => v,
            Slot::Free(_) => unreachable!("slab handle {handle} is vacant"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: DMap<u64, u64> = DMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(1, 10), None);
        assert_eq!(m.insert(1, 11), Some(10));
        assert_eq!(m.get(&1), Some(&11));
        assert!(m.contains_key(&1));
        assert_eq!(m.remove(&1), Some(11));
        assert_eq!(m.remove(&1), None);
        assert!(m.is_empty());
    }

    #[test]
    fn iteration_is_insertion_ordered() {
        let mut m: DMap<u64, u64> = DMap::new();
        let keys = [9u64, 2, 77, 31, 5, 1000, 0];
        for (i, &k) in keys.iter().enumerate() {
            m.insert(k, i as u64);
        }
        let got: Vec<u64> = m.keys().copied().collect();
        assert_eq!(got, keys);
        // Re-inserting does not move a key.
        m.insert(77, 99);
        let got: Vec<u64> = m.keys().copied().collect();
        assert_eq!(got, keys);
    }

    #[test]
    fn observable_behaviour_is_seed_independent() {
        // Different seeds change bucket layout, never the op results
        // or the dense iteration order.
        let mut a: DMap<u64, u64> = DMap::with_seed(1);
        let mut b: DMap<u64, u64> = DMap::with_seed(0xFFFF_FFFF_FFFF);
        let mut rng = SimRng::new(42);
        for _ in 0..2000 {
            let k = rng.gen_range(0, 64);
            match rng.gen_range(0, 3) {
                0 => assert_eq!(a.insert(k, k * 2), b.insert(k, k * 2)),
                1 => assert_eq!(a.remove(&k), b.remove(&k)),
                _ => assert_eq!(a.get(&k), b.get(&k)),
            }
            assert_eq!(
                a.iter().collect::<Vec<_>>(),
                b.iter().collect::<Vec<_>>(),
                "dense order must not depend on the seed"
            );
        }
    }

    #[test]
    fn matches_reference_map_under_random_ops() {
        // The dmap reference-fuzz pattern, expressed through the
        // generalized differential helper (op-log generation, BTreeMap
        // oracle, shrink-on-failure).
        use crate::check::{differential, DiffConfig};
        let cfg = DiffConfig::new("dmap-vs-btreemap", 0xD3A9)
            .cases(32)
            .ops(1500);
        differential(
            &cfg,
            |rng, _| {
                let k = rng.gen_range(0, 200);
                let v = rng.gen_range(0, 1_000_000);
                (rng.gen_range(0, 4), k, v)
            },
            |log: &[(u64, u64, u64)]| {
                let mut m: DMap<u64, u64> = DMap::new();
                let mut reference: BTreeMap<u64, u64> = BTreeMap::new();
                for &(op, k, v) in log {
                    match op {
                        0 | 1 => assert_eq!(m.insert(k, v), reference.insert(k, v)),
                        2 => assert_eq!(m.remove(&k), reference.remove(&k)),
                        _ => assert_eq!(m.get(&k), reference.get(&k)),
                    }
                    assert_eq!(m.len(), reference.len());
                }
                // Same contents, independent of order.
                let mut got: Vec<(u64, u64)> = m.iter().map(|(k, v)| (*k, *v)).collect();
                got.sort_unstable();
                let want: Vec<(u64, u64)> = reference.iter().map(|(k, v)| (*k, *v)).collect();
                assert_eq!(got, want);
                Ok(())
            },
        )
        .unwrap();
    }

    #[test]
    fn string_keyed_map_probes_with_borrowed_str() {
        let mut m: DMap<String, u32> = DMap::new();
        m.insert("alpha".to_string(), 1);
        m.insert("beta".to_string(), 2);
        // Borrowed-form lookups must hit without allocating a String.
        assert_eq!(m.get("alpha"), Some(&1));
        assert!(m.contains_key("beta"));
        assert_eq!(m.get_mut("beta").copied(), Some(2));
        assert_eq!(m.get("gamma"), None);
        assert_eq!(m.remove("alpha"), Some(1));
        assert_eq!(m.get("alpha"), None);
        // str / &str / String hash agreement is what makes this sound.
        let s = "delta".to_string();
        assert_eq!(s.det_hash(7), "delta".det_hash(7));
        assert_eq!(s.det_hash(7), (*s).det_hash(7));
    }

    #[test]
    fn backshift_deletion_keeps_probe_chains_sound() {
        // Adversarial: many keys, heavy interleaved removal. If
        // backshift mis-repairs a chain, some surviving key becomes
        // unreachable.
        let mut m: DMap<u64, u64> = DMap::new();
        for k in 0..512u64 {
            m.insert(k, k);
        }
        for k in (0..512u64).step_by(2) {
            assert_eq!(m.remove(&k), Some(k));
        }
        for k in 0..512u64 {
            if k % 2 == 0 {
                assert_eq!(m.get(&k), None);
            } else {
                assert_eq!(m.get(&k), Some(&k), "key {k} lost by backshift");
            }
        }
    }

    #[test]
    fn get_or_insert_with() {
        let mut m: DMap<u64, u64> = DMap::new();
        *m.get_or_insert_with(5, || 0) += 3;
        *m.get_or_insert_with(5, || 0) += 4;
        assert_eq!(m.get(&5), Some(&7));
    }

    #[test]
    fn string_and_tuple_keys() {
        let mut m: DMap<String, u32> = DMap::new();
        m.insert("alpha".to_string(), 1);
        m.insert("beta".to_string(), 2);
        assert_eq!(m.get(&"alpha".to_string()), Some(&1));
        let mut t: DMap<(u64, u64), u32> = DMap::new();
        t.insert((1, 2), 9);
        assert_eq!(t.get(&(1, 2)), Some(&9));
        assert_eq!(t.get(&(2, 1)), None);
    }

    #[test]
    fn set_roundtrip_and_iteration_order() {
        let mut s: DSet<u64> = DSet::new();
        for k in [5u64, 1, 9] {
            assert!(s.insert(k));
        }
        assert!(!s.insert(5));
        assert_eq!(s.len(), 3);
        let got: Vec<u64> = s.iter().copied().collect();
        assert_eq!(got, vec![5, 1, 9]);
        assert!(s.remove(&1));
        assert!(!s.remove(&1));
        assert!(s.contains(&9));
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn clear_keeps_map_usable() {
        let mut m: DMap<u64, u64> = DMap::new();
        for k in 0..100 {
            m.insert(k, k);
        }
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(&5), None);
        m.insert(5, 50);
        assert_eq!(m.get(&5), Some(&50));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn slab_insert_remove_reuse() {
        let mut s: Slab<u64> = Slab::new();
        let a = s.insert(10);
        let b = s.insert(20);
        let c = s.insert(30);
        assert_eq!(s.len(), 3);
        assert_eq!(s.remove(b), Some(20));
        assert_eq!(s.remove(b), None, "double free is refused");
        assert_eq!(s.get(b), None);
        // Freed slot is reused; occupied handles are stable.
        let d = s.insert(40);
        assert_eq!(d, b);
        assert_eq!(s[a], 10);
        assert_eq!(s[c], 30);
        s[c] = 31;
        assert_eq!(s.get(c), Some(&31));
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "vacant")]
    fn slab_indexing_vacant_slot_panics() {
        let mut s: Slab<u64> = Slab::new();
        let h = s.insert(1);
        s.remove(h);
        let _ = s[h];
    }

    #[test]
    fn slab_stress_against_reference() {
        let mut rng = SimRng::new(0x51AB);
        let mut s: Slab<u64> = Slab::new();
        let mut live: BTreeMap<u32, u64> = BTreeMap::new();
        for i in 0..4000u64 {
            if rng.gen_range(0, 3) == 0 && !live.is_empty() {
                let pick = rng.gen_range(0, live.len() as u64) as usize;
                let h = *live.keys().nth(pick).expect("non-empty");
                let want = live.remove(&h);
                assert_eq!(s.remove(h), want);
            } else {
                let h = s.insert(i);
                assert!(live.insert(h, i).is_none(), "handle reused while live");
            }
            assert_eq!(s.len(), live.len());
        }
        for (h, v) in &live {
            assert_eq!(s.get(*h), Some(v));
        }
    }
}
