//! Shared error type for the simulated storage stack.

use crate::ids::{BlockNr, InodeNr};
use std::fmt;

/// Result alias used throughout the simulation crates.
pub type SimResult<T> = Result<T, SimError>;

/// Errors produced by the simulated storage stack and the Duet framework.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The referenced inode does not exist (or was deleted).
    NoSuchInode(InodeNr),
    /// A path lookup failed.
    NoSuchPath(String),
    /// A path component that should be a directory is not.
    NotADirectory(String),
    /// Attempted to create an entry that already exists.
    AlreadyExists(String),
    /// An I/O request referenced a block outside the device.
    BlockOutOfRange(BlockNr),
    /// The device or filesystem ran out of space.
    NoSpace,
    /// A checksum verification failed (simulated latent sector error).
    ChecksumMismatch(BlockNr),
    /// A transient I/O error (EIO) on submission; the request may
    /// succeed if retried after a short backoff.
    TransientIo(BlockNr),
    /// A Duet session id is invalid or has been deregistered.
    InvalidSession(u32),
    /// All Duet session slots are in use (the framework supports a fixed
    /// maximum number of concurrent sessions, per §4.2).
    TooManySessions,
    /// `duet_get_path` failed because the file is no longer cached or no
    /// longer exists; the task should back out of opportunistic
    /// processing of this item (§3.2).
    PathNotAvailable(InodeNr),
    /// An operation is not supported for this task or filesystem type.
    Unsupported(&'static str),
    /// Invalid argument with a human-readable explanation.
    InvalidArgument(String),
}

impl SimError {
    /// Stable variant names, used by the fault-matrix suite to assert
    /// that every error arm is reachable via an injected fault.
    pub const ALL_LABELS: [&'static str; 13] = [
        "NoSuchInode",
        "NoSuchPath",
        "NotADirectory",
        "AlreadyExists",
        "BlockOutOfRange",
        "NoSpace",
        "ChecksumMismatch",
        "TransientIo",
        "InvalidSession",
        "TooManySessions",
        "PathNotAvailable",
        "Unsupported",
        "InvalidArgument",
    ];

    /// The variant name of this error (see [`SimError::ALL_LABELS`]).
    pub fn label(&self) -> &'static str {
        match self {
            SimError::NoSuchInode(_) => "NoSuchInode",
            SimError::NoSuchPath(_) => "NoSuchPath",
            SimError::NotADirectory(_) => "NotADirectory",
            SimError::AlreadyExists(_) => "AlreadyExists",
            SimError::BlockOutOfRange(_) => "BlockOutOfRange",
            SimError::NoSpace => "NoSpace",
            SimError::ChecksumMismatch(_) => "ChecksumMismatch",
            SimError::TransientIo(_) => "TransientIo",
            SimError::InvalidSession(_) => "InvalidSession",
            SimError::TooManySessions => "TooManySessions",
            SimError::PathNotAvailable(_) => "PathNotAvailable",
            SimError::Unsupported(_) => "Unsupported",
            SimError::InvalidArgument(_) => "InvalidArgument",
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoSuchInode(ino) => write!(f, "no such inode: {ino}"),
            SimError::NoSuchPath(p) => write!(f, "no such path: {p}"),
            SimError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            SimError::AlreadyExists(p) => write!(f, "already exists: {p}"),
            SimError::BlockOutOfRange(b) => write!(f, "block out of range: {b}"),
            SimError::NoSpace => write!(f, "no space left on device"),
            SimError::ChecksumMismatch(b) => write!(f, "checksum mismatch at {b}"),
            SimError::TransientIo(b) => write!(f, "transient I/O error (EIO) at {b}"),
            SimError::InvalidSession(id) => write!(f, "invalid duet session: {id}"),
            SimError::TooManySessions => write!(f, "too many concurrent duet sessions"),
            SimError::PathNotAvailable(ino) => {
                write!(f, "path for {ino} not available (file no longer cached)")
            }
            SimError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            SimError::InvalidArgument(why) => write!(f, "invalid argument: {why}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            SimError::NoSuchInode(InodeNr(3)).to_string(),
            "no such inode: ino#3"
        );
        assert_eq!(SimError::NoSpace.to_string(), "no space left on device");
        assert_eq!(
            SimError::ChecksumMismatch(BlockNr(9)).to_string(),
            "checksum mismatch at blk#9"
        );
        assert!(SimError::PathNotAvailable(InodeNr(1))
            .to_string()
            .contains("no longer cached"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SimError::NoSpace);
    }
}
