//! Virtual-time structured tracing plane.
//!
//! Every layer of the simulated stack — disk, page cache, filesystems,
//! the Duet framework and the maintenance tasks — can emit structured
//! [`TraceEvent`]s into one shared, ring-buffered [`TraceBuffer`]. The
//! plane exists for one purpose: when a Duet run and its baseline twin
//! disagree, the event streams say *where* — the equivalence oracle
//! replays both and localizes the first divergent effect together with
//! its causal span chain (task → work item → operation).
//!
//! Design rules, in the spirit of the rest of the workspace:
//!
//! - **Virtual time only.** Events are stamped with [`SimInstant`]s and
//!   [`SimDuration`]s; the plane never consults a wall clock, so a trace
//!   is a pure function of the run's `(config, seed, plan)` and replays
//!   byte-identically (the golden trace-determinism tests pin this).
//! - **Pure observation.** Emitting a trace never changes simulation
//!   state, consumes randomness or returns information to the caller
//!   that could steer control flow, so an armed trace cannot perturb a
//!   run: CSV outputs are byte-identical with tracing on, off, or
//!   compiled out.
//! - **Bounded memory.** The ring keeps the newest `capacity` events;
//!   older ones are dropped (and counted in [`TraceBuffer::dropped`]).
//!   Per-`(layer, kind)` aggregate counters are updated on *every* emit
//!   and survive ring rotation, so cheap whole-run statistics remain
//!   exact even when the event window does not cover the whole run.
//! - **Compile-out-able.** With the `trace` cargo feature disabled
//!   (enabled by default), [`TraceHandle`] becomes an empty shell: every
//!   emit method has an empty body and takes its fields as a closure, so
//!   call sites construct nothing and the optimizer removes the calls
//!   entirely.
//!
//! The sharing pattern mirrors [`crate::fault`]: one cloneable
//! [`TraceHandle`] is handed to the disk, the cache, the filesystems and
//! the framework (`set_trace(Some(handle.clone()))`); a component whose
//! handle is `None` pays one `Option` check per hook.
//!
//! Two dump formats are provided: line-delimited JSON
//! ([`TraceBuffer::dump_jsonl`], one event per line, stable field
//! order — the replay/diff format) and the Chrome `trace_event` JSON
//! array ([`TraceBuffer::dump_chrome`]) which loads directly into
//! `chrome://tracing` / Perfetto for flamegraph viewing, with one track
//! per layer.

#[cfg(feature = "trace")]
use std::cell::RefCell;
#[cfg(feature = "trace")]
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
#[cfg(feature = "trace")]
use std::rc::Rc;

use crate::clock::{SimDuration, SimInstant};

/// Default ring capacity: large enough that the oracle's bounded runs
/// never rotate, small enough (a few MB) to arm casually.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// The stack layer an event originates from. One Chrome track each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLayer {
    /// Block device: I/O service spans, retries.
    Disk,
    /// Page cache: add/remove/dirty/flush/evict.
    Cache,
    /// The CoW filesystem: submits, checksums, allocations.
    Btrfs,
    /// The log-structured filesystem: submits, log allocations, GC moves.
    F2fs,
    /// The Duet framework: hint delivery, state merges, session churn.
    Duet,
    /// Maintenance tasks: work items and their effects.
    Task,
}

impl TraceLayer {
    /// Every layer, in a fixed order (also the Chrome track order).
    pub const ALL: [TraceLayer; 6] = [
        TraceLayer::Disk,
        TraceLayer::Cache,
        TraceLayer::Btrfs,
        TraceLayer::F2fs,
        TraceLayer::Duet,
        TraceLayer::Task,
    ];

    /// Stable textual name used in dumps and counter keys.
    pub fn label(self) -> &'static str {
        match self {
            TraceLayer::Disk => "disk",
            TraceLayer::Cache => "cache",
            TraceLayer::Btrfs => "btrfs",
            TraceLayer::F2fs => "f2fs",
            TraceLayer::Duet => "duet",
            TraceLayer::Task => "task",
        }
    }

    /// The Chrome `tid` of this layer's track.
    #[cfg(feature = "trace")]
    fn track(self) -> usize {
        match self {
            TraceLayer::Disk => 1,
            TraceLayer::Cache => 2,
            TraceLayer::Btrfs => 3,
            TraceLayer::F2fs => 4,
            TraceLayer::Duet => 5,
            TraceLayer::Task => 6,
        }
    }
}

impl fmt::Display for TraceLayer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Identifier of a span within one [`TraceBuffer`]. Ids start at 1;
/// `SpanId(0)` is never assigned (and is what the compiled-out stub
/// returns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// A structured field value. Numbers stay numbers in the JSON dumps;
/// `Sym` is a static label, `Text` an owned string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldValue {
    /// An unsigned integer (block numbers, inode numbers, counts, ns).
    U(u64),
    /// A static symbol (e.g. `"read"`, `"hint"`, `"scan"`).
    Sym(&'static str),
    /// An owned string (rare; paths).
    Text(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U(v)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> FieldValue {
        FieldValue::U(v as u64)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U(v as u64)
    }
}

impl From<&'static str> for FieldValue {
    fn from(v: &'static str) -> FieldValue {
        FieldValue::Sym(v)
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Text(v)
    }
}

/// One named field of an event.
pub type Field = (&'static str, FieldValue);

/// One structured trace record. Instant events have `dur == 0`; span
/// records carry their own id in `span` and cover `[at, at + dur)`.
/// `parent` is the enclosing context span (a task work item) active
/// when the record was emitted — the causal chain the divergence
/// localizer reports.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Monotonic sequence number within the buffer (0-based).
    pub seq: u64,
    /// Virtual start time.
    pub at: SimInstant,
    /// Virtual extent (zero for instant events).
    pub dur: SimDuration,
    /// Originating layer.
    pub layer: TraceLayer,
    /// Stable kind label, e.g. `"io"`, `"evict"`, `"scrub.verify"`.
    pub kind: &'static str,
    /// This record's span id, if it is a span.
    pub span: Option<SpanId>,
    /// Enclosing context span, if any.
    pub parent: Option<SpanId>,
    /// Structured payload, in emission order.
    pub fields: Vec<Field>,
}

impl TraceEvent {
    /// Looks up an integer field by name.
    pub fn field_u64(&self, name: &str) -> Option<u64> {
        self.fields.iter().find_map(|(n, v)| match v {
            FieldValue::U(u) if *n == name => Some(*u),
            _ => None,
        })
    }

    /// Looks up a string-valued field by name.
    pub fn field_str(&self, name: &str) -> Option<&str> {
        self.fields.iter().find_map(|(n, v)| match v {
            FieldValue::Sym(s) if *n == name => Some(*s),
            FieldValue::Text(s) if *n == name => Some(s.as_str()),
            _ => None,
        })
    }

    /// Renders the event as one JSONL line (no trailing newline).
    /// Field order is fixed, so equal events render to equal bytes.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str(&format!(
            "{{\"seq\":{},\"t\":{},\"dur\":{},\"layer\":\"{}\",\"kind\":\"{}\"",
            self.seq,
            self.at.as_nanos(),
            self.dur.as_nanos(),
            self.layer.label(),
            self.kind
        ));
        if let Some(SpanId(id)) = self.span {
            s.push_str(&format!(",\"span\":{id}"));
        }
        if let Some(SpanId(id)) = self.parent {
            s.push_str(&format!(",\"parent\":{id}"));
        }
        if !self.fields.is_empty() {
            s.push_str(",\"args\":{");
            for (i, (name, value)) in self.fields.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!("\"{}\":{}", json_escape(name), json_value(value)));
            }
            s.push('}');
        }
        s.push('}');
        s
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_value(v: &FieldValue) -> String {
    match v {
        FieldValue::U(u) => format!("{u}"),
        FieldValue::Sym(s) => format!("\"{}\"", json_escape(s)),
        FieldValue::Text(s) => format!("\"{}\"", json_escape(s)),
    }
}

/// An open context span (begun, not yet ended).
#[cfg(feature = "trace")]
#[derive(Debug, Clone)]
struct OpenSpan {
    layer: TraceLayer,
    kind: &'static str,
    start: SimInstant,
    parent: Option<SpanId>,
    fields: Vec<Field>,
}

/// The ring-buffered event store plus whole-run aggregate counters.
/// Only compiled with the `trace` feature; use the always-available
/// [`TraceHandle`] at call sites.
#[cfg(feature = "trace")]
#[derive(Debug, Default)]
pub struct TraceBuffer {
    capacity: usize,
    ring: VecDeque<TraceEvent>,
    next_seq: u64,
    next_span: u64,
    dropped: u64,
    counters: BTreeMap<(&'static str, &'static str), u64>,
    ctx: Vec<SpanId>,
    open: BTreeMap<u64, OpenSpan>,
}

#[cfg(feature = "trace")]
impl TraceBuffer {
    /// A buffer keeping the newest `capacity` events (min 1).
    pub fn new(capacity: usize) -> TraceBuffer {
        TraceBuffer {
            capacity: capacity.max(1),
            ..TraceBuffer::default()
        }
    }

    fn current_parent(&self) -> Option<SpanId> {
        self.ctx.last().copied()
    }

    #[cfg(feature = "trace")]
    fn push(&mut self, ev: TraceEvent) {
        *self
            .counters
            .entry((ev.layer.label(), ev.kind))
            .or_insert(0) += 1;
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(ev);
    }

    /// Counts an occurrence without storing an event — for hooks too
    /// hot to keep in the ring (per-page checksums, hint deliveries).
    pub fn tick(&mut self, layer: TraceLayer, kind: &'static str) {
        *self.counters.entry((layer.label(), kind)).or_insert(0) += 1;
    }

    /// Counts `n` occurrences at once (batched hint deliveries).
    pub fn tick_n(&mut self, layer: TraceLayer, kind: &'static str, n: u64) {
        *self.counters.entry((layer.label(), kind)).or_insert(0) += n;
    }

    /// Records an instant event under the current context span.
    #[cfg(feature = "trace")]
    pub fn event(
        &mut self,
        layer: TraceLayer,
        kind: &'static str,
        at: SimInstant,
        fields: Vec<Field>,
    ) {
        let ev = TraceEvent {
            seq: self.next_seq,
            at,
            dur: SimDuration::ZERO,
            layer,
            kind,
            span: None,
            parent: self.current_parent(),
            fields,
        };
        self.next_seq += 1;
        self.push(ev);
    }

    /// Records a completed span (known start and extent) under the
    /// current context span, returning its id.
    #[cfg(feature = "trace")]
    pub fn span(
        &mut self,
        layer: TraceLayer,
        kind: &'static str,
        start: SimInstant,
        dur: SimDuration,
        fields: Vec<Field>,
    ) -> SpanId {
        self.next_span += 1;
        let id = SpanId(self.next_span);
        let ev = TraceEvent {
            seq: self.next_seq,
            at: start,
            dur,
            layer,
            kind,
            span: Some(id),
            parent: self.current_parent(),
            fields,
        };
        self.next_seq += 1;
        self.push(ev);
        id
    }

    /// Opens a context span: until the matching [`TraceBuffer::ctx_end`],
    /// every emitted record carries this span as its parent. Used by
    /// tasks to bracket one work item (with its provenance fields).
    #[cfg(feature = "trace")]
    pub fn ctx_begin(
        &mut self,
        layer: TraceLayer,
        kind: &'static str,
        at: SimInstant,
        fields: Vec<Field>,
    ) -> SpanId {
        self.next_span += 1;
        let id = SpanId(self.next_span);
        self.open.insert(
            id.0,
            OpenSpan {
                layer,
                kind,
                start: at,
                parent: self.current_parent(),
                fields,
            },
        );
        self.ctx.push(id);
        id
    }

    /// Closes a context span, emitting its record with the measured
    /// extent. Closing out of order is tolerated (the id is removed
    /// from wherever it sits in the context stack).
    #[cfg(feature = "trace")]
    pub fn ctx_end(&mut self, id: SpanId, at: SimInstant) {
        self.ctx.retain(|&s| s != id);
        let Some(open) = self.open.remove(&id.0) else {
            return;
        };
        let ev = TraceEvent {
            seq: self.next_seq,
            at: open.start,
            dur: at.saturating_duration_since(open.start),
            layer: open.layer,
            kind: open.kind,
            span: Some(id),
            parent: open.parent,
            fields: open.fields,
        };
        self.next_seq += 1;
        self.push(ev);
    }

    /// The buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring.iter().cloned().collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no event is buffered.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events dropped to ring rotation so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Whole-run aggregate counters as sorted `("layer.kind", count)`
    /// rows. Exact even after ring rotation.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .map(|(&(layer, kind), &n)| (format!("{layer}.{kind}"), n))
            .collect()
    }

    /// Forgets buffered events and counters (capacity is kept).
    pub fn clear(&mut self) {
        self.ring.clear();
        self.counters.clear();
        self.ctx.clear();
        self.open.clear();
        self.next_seq = 0;
        self.next_span = 0;
        self.dropped = 0;
    }

    /// The JSONL dump: one event per line, oldest first, stable field
    /// order — byte-identical for byte-identical runs.
    pub fn dump_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.ring.iter() {
            out.push_str(&ev.to_jsonl());
            out.push('\n');
        }
        out
    }

    /// The Chrome `trace_event` dump (a JSON array of complete/instant
    /// events, one track per layer; virtual µs on the time axis). Load
    /// in `chrome://tracing` or Perfetto.
    pub fn dump_chrome(&self) -> String {
        let mut out = String::from("[");
        let mut first = true;
        for ev in self.ring.iter() {
            if !first {
                out.push(',');
            }
            first = false;
            let ph = if ev.span.is_some() { "X" } else { "i" };
            let us = ev.at.as_nanos() / 1_000;
            let frac = ev.at.as_nanos() % 1_000;
            out.push_str(&format!(
                "\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{ph}\",\"pid\":1,\"tid\":{},\
                 \"ts\":{us}.{frac:03}",
                json_escape(ev.kind),
                ev.layer.label(),
                ev.layer.track(),
            ));
            if ev.span.is_some() {
                let dur_us = ev.dur.as_nanos() / 1_000;
                let dur_frac = ev.dur.as_nanos() % 1_000;
                out.push_str(&format!(",\"dur\":{dur_us}.{dur_frac:03}"));
            } else {
                out.push_str(",\"s\":\"t\"");
            }
            if !ev.fields.is_empty() {
                out.push_str(",\"args\":{");
                for (i, (name, value)) in ev.fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("\"{}\":{}", json_escape(name), json_value(value)));
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("\n]\n");
        out
    }
}

/// A cloneable, shared handle to one [`TraceBuffer`] — the tracing
/// analogue of [`crate::fault::FaultHandle`]. Emit methods take their
/// fields as a closure so that, with the `trace` feature disabled, call
/// sites construct nothing and compile to nothing.
#[derive(Debug, Clone, Default)]
pub struct TraceHandle {
    #[cfg(feature = "trace")]
    inner: Rc<RefCell<TraceBuffer>>,
}

impl TraceHandle {
    /// A new shared buffer with the given ring capacity.
    pub fn new(capacity: usize) -> TraceHandle {
        #[cfg(not(feature = "trace"))]
        let _ = capacity;
        TraceHandle {
            #[cfg(feature = "trace")]
            inner: Rc::new(RefCell::new(TraceBuffer::new(capacity))),
        }
    }

    /// A new shared buffer with [`DEFAULT_TRACE_CAPACITY`].
    pub fn with_default_capacity() -> TraceHandle {
        TraceHandle::new(DEFAULT_TRACE_CAPACITY)
    }

    /// See [`TraceBuffer::tick`].
    pub fn tick(&self, layer: TraceLayer, kind: &'static str) {
        #[cfg(not(feature = "trace"))]
        let _ = (layer, kind);
        #[cfg(feature = "trace")]
        self.inner.borrow_mut().tick(layer, kind);
    }

    /// See [`TraceBuffer::tick_n`].
    pub fn tick_n(&self, layer: TraceLayer, kind: &'static str, n: u64) {
        #[cfg(not(feature = "trace"))]
        let _ = (layer, kind, n);
        #[cfg(feature = "trace")]
        self.inner.borrow_mut().tick_n(layer, kind, n);
    }

    /// See [`TraceBuffer::event`]. `fields` is only evaluated when the
    /// `trace` feature is compiled in.
    pub fn event<F>(&self, layer: TraceLayer, kind: &'static str, at: SimInstant, fields: F)
    where
        F: FnOnce() -> Vec<Field>,
    {
        #[cfg(not(feature = "trace"))]
        let _ = (layer, kind, at, fields);
        #[cfg(feature = "trace")]
        self.inner.borrow_mut().event(layer, kind, at, fields());
    }

    /// See [`TraceBuffer::span`].
    pub fn span<F>(
        &self,
        layer: TraceLayer,
        kind: &'static str,
        start: SimInstant,
        dur: SimDuration,
        fields: F,
    ) -> SpanId
    where
        F: FnOnce() -> Vec<Field>,
    {
        #[cfg(not(feature = "trace"))]
        {
            let _ = (layer, kind, start, dur, fields);
            SpanId(0)
        }
        #[cfg(feature = "trace")]
        self.inner
            .borrow_mut()
            .span(layer, kind, start, dur, fields())
    }

    /// See [`TraceBuffer::ctx_begin`].
    pub fn ctx_begin<F>(
        &self,
        layer: TraceLayer,
        kind: &'static str,
        at: SimInstant,
        fields: F,
    ) -> SpanId
    where
        F: FnOnce() -> Vec<Field>,
    {
        #[cfg(not(feature = "trace"))]
        {
            let _ = (layer, kind, at, fields);
            SpanId(0)
        }
        #[cfg(feature = "trace")]
        self.inner.borrow_mut().ctx_begin(layer, kind, at, fields())
    }

    /// See [`TraceBuffer::ctx_end`].
    pub fn ctx_end(&self, id: SpanId, at: SimInstant) {
        #[cfg(not(feature = "trace"))]
        let _ = (id, at);
        #[cfg(feature = "trace")]
        self.inner.borrow_mut().ctx_end(id, at);
    }

    /// See [`TraceBuffer::events`].
    pub fn events(&self) -> Vec<TraceEvent> {
        #[cfg(not(feature = "trace"))]
        return Vec::new();
        #[cfg(feature = "trace")]
        self.inner.borrow().events()
    }

    /// See [`TraceBuffer::len`].
    pub fn len(&self) -> usize {
        #[cfg(not(feature = "trace"))]
        return 0;
        #[cfg(feature = "trace")]
        self.inner.borrow().len()
    }

    /// See [`TraceBuffer::is_empty`].
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// See [`TraceBuffer::dropped`].
    pub fn dropped(&self) -> u64 {
        #[cfg(not(feature = "trace"))]
        return 0;
        #[cfg(feature = "trace")]
        self.inner.borrow().dropped()
    }

    /// See [`TraceBuffer::counters`].
    pub fn counters(&self) -> Vec<(String, u64)> {
        #[cfg(not(feature = "trace"))]
        return Vec::new();
        #[cfg(feature = "trace")]
        self.inner.borrow().counters()
    }

    /// See [`TraceBuffer::clear`].
    pub fn clear(&self) {
        #[cfg(feature = "trace")]
        self.inner.borrow_mut().clear();
    }

    /// See [`TraceBuffer::dump_jsonl`].
    pub fn dump_jsonl(&self) -> String {
        #[cfg(not(feature = "trace"))]
        return String::new();
        #[cfg(feature = "trace")]
        self.inner.borrow().dump_jsonl()
    }

    /// See [`TraceBuffer::dump_chrome`].
    pub fn dump_chrome(&self) -> String {
        #[cfg(not(feature = "trace"))]
        return "[\n]\n".to_string();
        #[cfg(feature = "trace")]
        self.inner.borrow().dump_chrome()
    }

    /// True when tracing is compiled in (the `trace` cargo feature).
    pub const fn compiled_in() -> bool {
        cfg!(feature = "trace")
    }
}

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;

    const T0: SimInstant = SimInstant::EPOCH;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    #[test]
    fn events_carry_context_parents() {
        let tr = TraceHandle::new(64);
        let item = tr.ctx_begin(TraceLayer::Task, "scrub.item", T0, || {
            vec![("src", "scan".into())]
        });
        tr.event(TraceLayer::Task, "scrub.verify", T0 + ms(1), || {
            vec![("block", 7u64.into())]
        });
        tr.ctx_end(item, T0 + ms(2));
        let evs = tr.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].kind, "scrub.verify");
        assert_eq!(evs[0].parent, Some(item));
        assert_eq!(evs[1].kind, "scrub.item");
        assert_eq!(evs[1].span, Some(item));
        assert_eq!(evs[1].dur, ms(2));
        assert_eq!(evs[1].field_str("src"), Some("scan"));
    }

    #[test]
    fn ring_rotation_keeps_counters_exact() {
        let tr = TraceHandle::new(4);
        for i in 0..10u64 {
            tr.event(TraceLayer::Cache, "add", T0, || vec![("ino", i.into())]);
        }
        tr.tick(TraceLayer::Duet, "hint");
        assert_eq!(tr.len(), 4);
        assert_eq!(tr.dropped(), 6);
        let counters = tr.counters();
        assert_eq!(
            counters,
            vec![("cache.add".to_string(), 10), ("duet.hint".to_string(), 1)]
        );
        // The ring keeps the newest events.
        assert_eq!(tr.events()[0].field_u64("ino"), Some(6));
    }

    #[test]
    fn jsonl_is_stable_and_escaped() {
        let tr = TraceHandle::new(16);
        tr.span(TraceLayer::Disk, "io", T0 + ms(1), ms(3), || {
            vec![
                ("kind", "read".into()),
                ("block", 42u64.into()),
                ("path", "a\"b\\c".to_string().into()),
            ]
        });
        let dump = tr.dump_jsonl();
        assert_eq!(
            dump,
            "{\"seq\":0,\"t\":1000000,\"dur\":3000000,\"layer\":\"disk\",\"kind\":\"io\",\
             \"span\":1,\"args\":{\"kind\":\"read\",\"block\":42,\"path\":\"a\\\"b\\\\c\"}}\n"
        );
    }

    #[test]
    fn chrome_dump_has_complete_and_instant_phases() {
        let tr = TraceHandle::new(16);
        tr.span(TraceLayer::Disk, "io", T0, ms(1), Vec::new);
        tr.event(TraceLayer::Duet, "churn", T0 + ms(2), Vec::new);
        let dump = tr.dump_chrome();
        assert!(dump.starts_with('[') && dump.ends_with("]\n"), "{dump}");
        assert!(dump.contains("\"ph\":\"X\""), "{dump}");
        assert!(dump.contains("\"ph\":\"i\""), "{dump}");
        assert!(dump.contains("\"dur\":1000.000"), "{dump}");
        assert!(dump.contains("\"tid\":5"), "{dump}");
    }

    #[test]
    fn handle_shares_one_buffer_and_clear_resets() {
        let tr = TraceHandle::new(16);
        let tr2 = tr.clone();
        tr.event(TraceLayer::Btrfs, "submit", T0, Vec::new);
        tr2.event(TraceLayer::Btrfs, "submit", T0, Vec::new);
        assert_eq!(tr.len(), 2);
        tr.clear();
        assert!(tr2.is_empty());
        assert!(tr2.counters().is_empty());
        assert_eq!(tr2.dump_jsonl(), "");
    }

    #[test]
    fn out_of_order_ctx_end_is_tolerated() {
        let tr = TraceHandle::new(16);
        let a = tr.ctx_begin(TraceLayer::Task, "a", T0, Vec::new);
        let b = tr.ctx_begin(TraceLayer::Task, "b", T0, Vec::new);
        tr.ctx_end(a, T0 + ms(1));
        // `b` is still the context even though its parent closed first.
        tr.event(TraceLayer::Task, "x", T0, Vec::new);
        tr.ctx_end(b, T0 + ms(2));
        tr.ctx_end(b, T0 + ms(3)); // double-end: no-op
        let evs = tr.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[1].parent, Some(b));
        assert_eq!(evs[2].span, Some(b));
    }

    #[test]
    fn layer_labels_are_unique() {
        let mut labels: Vec<&str> = TraceLayer::ALL.iter().map(|l| l.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), TraceLayer::ALL.len());
    }
}
