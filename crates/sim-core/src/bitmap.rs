//! A sparse, chunked bitmap.
//!
//! The Duet kernel implementation uses "a red-black tree to dynamically
//! allocate portions of the relevant and done bitmaps, to represent
//! ranges that have marked bits, and deallocate them when all their bits
//! are unmarked" (§4.2). This limits memory when tasks touch small,
//! localized chunks of a device or filesystem.
//!
//! [`SparseBitmap`] is the userspace analogue: fixed-size chunks of bits
//! stored in an ordered map ([`std::collections::BTreeMap`], Rust's
//! red-black-tree equivalent), allocated on the first set bit in their
//! range and freed when the last bit clears. [`SparseBitmap::memory_bytes`]
//! reports the allocated footprint so the §6.4 memory-overhead experiment
//! can measure it directly.

use std::collections::BTreeMap;

/// Bits per allocated chunk: 32 Ki-bits = 4 KiB of payload per chunk,
/// mirroring a page-sized kernel allocation.
const CHUNK_BITS: u64 = 32 * 1024;
/// 64-bit words per chunk.
const CHUNK_WORDS: usize = (CHUNK_BITS / 64) as usize;

/// A dynamically-allocated bitmap over a `u64` index space.
///
/// # Examples
///
/// ```
/// use sim_core::SparseBitmap;
///
/// let mut bm = SparseBitmap::new();
/// bm.set(1_000_000);
/// assert!(bm.test(1_000_000));
/// assert!(!bm.test(999_999));
/// assert_eq!(bm.count(), 1);
/// bm.clear(1_000_000);
/// assert_eq!(bm.memory_bytes(), 0); // chunk freed
/// ```
#[derive(Debug, Clone, Default)]
pub struct SparseBitmap {
    chunks: BTreeMap<u64, Box<[u64; CHUNK_WORDS]>>,
    /// Number of set bits, maintained incrementally.
    count: u64,
}

impl SparseBitmap {
    /// Creates an empty bitmap. No memory is allocated until a bit is set.
    pub fn new() -> Self {
        SparseBitmap::default()
    }

    /// Feeds the full membership (in ascending index order) into a
    /// fork-equivalence digest.
    pub fn digest_state(&self, d: &mut crate::snapshot::Digest) {
        d.write_u64(self.count());
        for i in self.iter() {
            d.write_u64(i);
        }
    }

    fn locate(index: u64) -> (u64, usize, u64) {
        let chunk = index / CHUNK_BITS;
        let within = index % CHUNK_BITS;
        let word = (within / 64) as usize;
        let mask = 1u64 << (within % 64);
        (chunk, word, mask)
    }

    /// Sets the bit at `index`. Returns `true` if the bit was previously
    /// clear (i.e. the call changed state).
    pub fn set(&mut self, index: u64) -> bool {
        let (chunk, word, mask) = Self::locate(index);
        let c = self
            .chunks
            .entry(chunk)
            .or_insert_with(|| Box::new([0u64; CHUNK_WORDS]));
        let was_clear = c[word] & mask == 0;
        c[word] |= mask;
        if was_clear {
            self.count += 1;
        }
        was_clear
    }

    /// Clears the bit at `index`. Returns `true` if the bit was previously
    /// set. Frees the containing chunk when its last bit clears.
    pub fn clear(&mut self, index: u64) -> bool {
        let (chunk, word, mask) = Self::locate(index);
        let Some(c) = self.chunks.get_mut(&chunk) else {
            return false;
        };
        let was_set = c[word] & mask != 0;
        if was_set {
            c[word] &= !mask;
            self.count -= 1;
            if c.iter().all(|&w| w == 0) {
                self.chunks.remove(&chunk);
            }
        }
        was_set
    }

    /// Tests the bit at `index`.
    pub fn test(&self, index: u64) -> bool {
        let (chunk, word, mask) = Self::locate(index);
        self.chunks
            .get(&chunk)
            .map(|c| c[word] & mask != 0)
            .unwrap_or(false)
    }

    /// Sets every bit in `start..end`, word-at-a-time: full interior
    /// words are filled with a single `|=`, and the partial words at
    /// the range edges use masks. Large task ranges (a scrubber marking
    /// a whole extent `done`) cost one word op per 64 bits instead of
    /// one map lookup per bit.
    pub fn set_range(&mut self, start: u64, end: u64) {
        let mut i = start;
        while i < end {
            let chunk = i / CHUNK_BITS;
            let chunk_end = ((chunk + 1) * CHUNK_BITS).min(end);
            let c = self
                .chunks
                .entry(chunk)
                .or_insert_with(|| Box::new([0u64; CHUNK_WORDS]));
            let mut word = ((i % CHUNK_BITS) / 64) as usize;
            while i < chunk_end {
                let bit = i % 64;
                let span = (64 - bit).min(chunk_end - i);
                let mask = Self::range_mask(bit, span);
                let newly_set = mask & !c[word];
                c[word] |= mask;
                self.count += newly_set.count_ones() as u64;
                i += span;
                word += 1;
            }
        }
    }

    /// Clears every bit in `start..end` word-at-a-time (see
    /// [`SparseBitmap::set_range`]). Chunks whose last bit clears are
    /// freed, exactly as with single-bit [`SparseBitmap::clear`].
    pub fn clear_range(&mut self, start: u64, end: u64) {
        let mut i = start;
        while i < end {
            let chunk = i / CHUNK_BITS;
            let chunk_end = ((chunk + 1) * CHUNK_BITS).min(end);
            let Some(c) = self.chunks.get_mut(&chunk) else {
                i = chunk_end;
                continue;
            };
            let mut word = ((i % CHUNK_BITS) / 64) as usize;
            let mut cleared = 0u64;
            while i < chunk_end {
                let bit = i % 64;
                let span = (64 - bit).min(chunk_end - i);
                let mask = Self::range_mask(bit, span);
                cleared += (c[word] & mask).count_ones() as u64;
                c[word] &= !mask;
                i += span;
                word += 1;
            }
            if cleared > 0 {
                self.count -= cleared;
                if c.iter().all(|&w| w == 0) {
                    self.chunks.remove(&chunk);
                }
            }
        }
    }

    /// Mask covering `span` bits starting at `bit` within one word.
    /// `span` is in `1..=64` and `bit + span <= 64`.
    #[inline]
    fn range_mask(bit: u64, span: u64) -> u64 {
        if span == 64 {
            !0u64
        } else {
            ((1u64 << span) - 1) << bit
        }
    }

    /// Number of set bits.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns `true` if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Removes all bits and frees all chunks.
    pub fn clear_all(&mut self) {
        self.chunks.clear();
        self.count = 0;
    }

    /// Bytes of bitmap payload currently allocated.
    ///
    /// This is the quantity the paper reports in §6.4 ("the bitmap
    /// required 1.47MB, while the worst case estimate for 50GB of data is
    /// 1.56MB"). Only chunk payloads are counted, matching how the kernel
    /// implementation accounts bitmap memory; per-node map overhead is
    /// excluded.
    pub fn memory_bytes(&self) -> u64 {
        self.chunks.len() as u64 * (CHUNK_BITS / 8)
    }

    /// Iterates over all set bit indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.chunks.iter().flat_map(|(&chunk, words)| {
            words.iter().enumerate().flat_map(move |(wi, &w)| {
                BitIter(w).map(move |b| chunk * CHUNK_BITS + wi as u64 * 64 + b)
            })
        })
    }

    /// Returns the first set bit at or after `index`, if any.
    pub fn next_set(&self, index: u64) -> Option<u64> {
        let start_chunk = index / CHUNK_BITS;
        for (&chunk, words) in self.chunks.range(start_chunk..) {
            let base = chunk * CHUNK_BITS;
            for (wi, &w) in words.iter().enumerate() {
                if w == 0 {
                    continue;
                }
                let word_base = base + wi as u64 * 64;
                // Skip words entirely before the query point.
                if word_base + 64 <= index {
                    continue;
                }
                let mut bits = w;
                if index > word_base {
                    bits &= !0u64 << (index - word_base);
                }
                if bits != 0 {
                    return Some(word_base + bits.trailing_zeros() as u64);
                }
            }
        }
        None
    }
}

/// Iterator over set bit positions (0..64) of a single word.
struct BitIter(u64);

impl Iterator for BitIter {
    type Item = u64;
    fn next(&mut self) -> Option<u64> {
        if self.0 == 0 {
            return None;
        }
        let b = self.0.trailing_zeros() as u64;
        self.0 &= self.0 - 1;
        Some(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_test_clear_roundtrip() {
        let mut bm = SparseBitmap::new();
        assert!(!bm.test(5));
        assert!(bm.set(5));
        assert!(!bm.set(5), "second set reports no state change");
        assert!(bm.test(5));
        assert_eq!(bm.count(), 1);
        assert!(bm.clear(5));
        assert!(!bm.clear(5));
        assert!(bm.is_empty());
    }

    #[test]
    fn chunk_is_freed_when_empty() {
        let mut bm = SparseBitmap::new();
        bm.set(0);
        bm.set(CHUNK_BITS); // second chunk
        assert_eq!(bm.memory_bytes(), 2 * CHUNK_BITS / 8);
        bm.clear(CHUNK_BITS);
        assert_eq!(bm.memory_bytes(), CHUNK_BITS / 8);
        bm.clear(0);
        assert_eq!(bm.memory_bytes(), 0);
    }

    #[test]
    fn ranges() {
        let mut bm = SparseBitmap::new();
        bm.set_range(10, 20);
        assert_eq!(bm.count(), 10);
        assert!(bm.test(10) && bm.test(19) && !bm.test(20));
        bm.clear_range(0, 15);
        assert_eq!(bm.count(), 5);
        assert!(!bm.test(14) && bm.test(15));
    }

    /// Pins `count()` for ranges whose edges land on, next to, and
    /// across 64-bit word boundaries and chunk boundaries — the cases
    /// the word-at-a-time edge masks must get exactly right.
    #[test]
    fn range_count_across_word_boundaries() {
        let cases = [
            (0, 64),                              // exactly one word
            (0, 63),                              // one short of a boundary
            (1, 64),                              // starts mid-word, ends on one
            (63, 65),                             // straddles a word boundary
            (64, 128),                            // word-aligned interior
            (60, 200),                            // partial, full, partial words
            (CHUNK_BITS - 1, CHUNK_BITS + 1),     // straddles a chunk boundary
            (CHUNK_BITS - 64, CHUNK_BITS + 64),   // aligned across chunks
            (CHUNK_BITS - 7, 2 * CHUNK_BITS + 3), // full chunk plus ragged edges
            (5, 5),                               // empty range
        ];
        for &(start, end) in &cases {
            let mut bm = SparseBitmap::new();
            bm.set_range(start, end);
            assert_eq!(bm.count(), end - start, "set_range({start}, {end})");
            for i in start.saturating_sub(2)..end + 2 {
                assert_eq!(bm.test(i), (start..end).contains(&i), "bit {i}");
            }
            // Overlapping re-set must not double-count.
            bm.set_range(start, end);
            assert_eq!(bm.count(), end - start);
            // Clearing a superset range leaves nothing and frees chunks.
            bm.clear_range(start.saturating_sub(3), end + 3);
            assert_eq!(bm.count(), 0, "clear_range over ({start}, {end})");
            assert_eq!(bm.memory_bytes(), 0);
        }
    }

    /// Word-at-a-time ranges agree bit-for-bit with per-bit loops.
    #[test]
    fn ranges_match_per_bit_reference() {
        use crate::rng::SimRng;
        let mut rng = SimRng::new(0x0b17_ba9e);
        for _ in 0..200 {
            let mut bm = SparseBitmap::new();
            let mut reference = std::collections::BTreeSet::new();
            for _ in 0..8 {
                let start = rng.gen_range(0, 3 * CHUNK_BITS);
                let end = start + rng.gen_range(0, 300);
                if rng.gen_range(0, 2) == 0 {
                    bm.set_range(start, end);
                    reference.extend(start..end);
                } else {
                    bm.clear_range(start, end);
                    for i in start..end {
                        reference.remove(&i);
                    }
                }
                assert_eq!(bm.count(), reference.len() as u64);
            }
            let got: Vec<u64> = bm.iter().collect();
            let want: Vec<u64> = reference.iter().copied().collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn iteration_in_order() {
        let mut bm = SparseBitmap::new();
        let indices = [
            0u64,
            63,
            64,
            1000,
            CHUNK_BITS - 1,
            CHUNK_BITS,
            5 * CHUNK_BITS + 7,
        ];
        for &i in indices.iter().rev() {
            bm.set(i);
        }
        let collected: Vec<u64> = bm.iter().collect();
        assert_eq!(collected, indices);
    }

    #[test]
    fn next_set_scans_across_chunks() {
        let mut bm = SparseBitmap::new();
        bm.set(100);
        bm.set(CHUNK_BITS + 3);
        assert_eq!(bm.next_set(0), Some(100));
        assert_eq!(bm.next_set(100), Some(100));
        assert_eq!(bm.next_set(101), Some(CHUNK_BITS + 3));
        assert_eq!(bm.next_set(CHUNK_BITS + 4), None);
    }

    #[test]
    fn next_set_within_word() {
        let mut bm = SparseBitmap::new();
        bm.set(64);
        bm.set(70);
        assert_eq!(bm.next_set(65), Some(70));
    }

    #[test]
    fn clear_all_frees_everything() {
        let mut bm = SparseBitmap::new();
        bm.set_range(0, 1000);
        bm.clear_all();
        assert!(bm.is_empty());
        assert_eq!(bm.memory_bytes(), 0);
        assert_eq!(bm.iter().count(), 0);
    }

    // Randomized reference tests driven by the crate's own deterministic
    // generator (the workspace builds offline, with no proptest dep).
    mod properties {
        use super::*;
        use crate::rng::SimRng;
        use std::collections::BTreeSet;

        /// The sparse bitmap behaves exactly like a set of integers.
        #[test]
        fn matches_reference_set() {
            for case in 0..64u64 {
                let mut rng = SimRng::new(0xB17 ^ case);
                let mut bm = SparseBitmap::new();
                let mut set = BTreeSet::new();
                for _ in 0..rng.gen_range(0, 400) {
                    let op = rng.gen_range(0, 3);
                    let idx = rng.gen_range(0, 200_000);
                    match op {
                        0 => {
                            assert_eq!(bm.set(idx), set.insert(idx));
                        }
                        1 => {
                            assert_eq!(bm.clear(idx), set.remove(&idx));
                        }
                        _ => {
                            assert_eq!(bm.test(idx), set.contains(&idx));
                        }
                    }
                    assert_eq!(bm.count(), set.len() as u64);
                }
                let a: Vec<u64> = bm.iter().collect();
                let b: Vec<u64> = set.iter().copied().collect();
                assert_eq!(a, b);
            }
        }

        /// `next_set` agrees with the reference set's range query.
        #[test]
        fn next_set_matches_reference() {
            for case in 0..128u64 {
                let mut rng = SimRng::new(0x4E57 ^ case);
                let mut bits = BTreeSet::new();
                for _ in 0..rng.gen_range(0, 100) {
                    bits.insert(rng.gen_range(0, 100_000));
                }
                let query = rng.gen_range(0, 100_000);
                let mut bm = SparseBitmap::new();
                for &b in &bits {
                    bm.set(b);
                }
                let expected = bits.range(query..).next().copied();
                assert_eq!(bm.next_set(query), expected);
            }
        }
    }
}
