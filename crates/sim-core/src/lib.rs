//! Simulation substrate shared by every crate in the Duet reproduction.
//!
//! This crate provides the building blocks of the discrete-event storage
//! simulation used to reproduce *Opportunistic Storage Maintenance*
//! (SOSP 2015):
//!
//! - [`clock`]: a virtual nanosecond clock. All experiment durations are
//!   expressed in virtual time, so a "30-minute" run completes in
//!   milliseconds of wall-clock time.
//! - [`ids`]: strongly-typed identifiers for blocks, inodes, pages,
//!   devices and segments. Newtypes prevent the classic simulator bug of
//!   mixing up block numbers and page indices.
//! - [`rng`]: a deterministic random-number generator plus the sampling
//!   distributions used by the workload generator (uniform, Zipf-like,
//!   log-normal file sizes).
//! - [`bitmap`]: a sparse chunked bitmap, our analogue of the red-black
//!   tree of bitmap ranges that the Duet kernel implementation uses for
//!   its `done` and `relevant` bitmaps (§4.2 of the paper). It reports
//!   its own memory footprint so the §6.4 memory-overhead experiment can
//!   be reproduced.
//! - [`stats`]: mean / standard deviation / confidence intervals and
//!   simple counters used by the evaluation harness.
//! - [`error`]: the shared error type.
//! - [`fault`]: the deterministic fault-injection plane — a
//!   `(seed, plan)` pair drives replayable fault decisions at named
//!   sites throughout the stack.
//! - [`check`]: a zero-dependency property-test helper with
//!   deterministic case generation and seed-reporting failures.
//! - [`trace`]: the virtual-time structured tracing plane — ring-buffered
//!   events and spans from every layer, with JSONL / Chrome `trace_event`
//!   dumps and whole-run counters; compiled out entirely when the `trace`
//!   cargo feature is disabled.
//! - [`dmap`]: deterministic O(1) hash containers ([`dmap::DMap`],
//!   [`dmap::DSet`]) with seeded hashing and insertion-order iteration,
//!   plus a slab arena ([`dmap::Slab`]) with stable `u32` handles — the
//!   hot-path replacements for the B-tree maps that PR 1's determinism
//!   pass left on the page-cache and priority-queue inner loops.
//! - [`snapshot`]: the snapshot/fork warm-start plane — a bounded
//!   memo of pristine simulated-stack states ([`snapshot::SnapshotStore`])
//!   plus the incremental state digest ([`snapshot::Digest`],
//!   [`snapshot::StateDigest`]) behind the fork-equivalence oracle,
//!   gated by `DUET_SNAPSHOT`.
//! - [`omap`]: the deterministic **ordered** companion
//!   ([`omap::DOrdMap`]): a chunked sorted vector with O(log n)
//!   lookups, `range`/`next_back` and neighbour queries, and sorted
//!   cache-friendly iteration — for the extent-map and free-space hot
//!   paths that need order, which [`dmap::DMap`] cannot provide.

pub mod bitmap;
pub mod check;
pub mod clock;
pub mod dmap;
pub mod error;
pub mod fault;
pub mod ids;
pub mod omap;
pub mod rng;
pub mod snapshot;
pub mod stats;
pub mod trace;

pub use bitmap::SparseBitmap;
pub use clock::{Clock, SimDuration, SimInstant};
pub use dmap::{DMap, DSet, DetHash, Slab};
pub use error::{SimError, SimResult};
pub use fault::{FaultHandle, FaultInjector, FaultPlan, FaultSite};
pub use ids::{
    BlockNr,
    DeviceId,
    InodeNr,
    PageIndex,
    SegmentNr, //
};
pub use omap::DOrdMap;
pub use rng::SimRng;
pub use trace::{SpanId, TraceEvent, TraceHandle, TraceLayer};

/// Size of a page (and of a filesystem block) in bytes.
///
/// The paper's evaluation uses Linux's 4 KiB pages and configures both
/// Btrfs and F2fs with 4 KiB blocks, so a page maps 1:1 onto a block.
pub const PAGE_SIZE: u64 = 4096;
