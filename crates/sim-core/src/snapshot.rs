//! Deterministic snapshot/fork plane for sweep warm-starts.
//!
//! Sweeps like `table5_max_util` run dozens of cells that share an
//! identical setup prefix — population, layout aging, event drain —
//! and differ only in the measured window's knobs (target utilization,
//! task list, Duet mode). Rebuilding that prefix per cell dominated
//! the sweep's wall time. This module provides the substrate for
//! capturing the prefix **once** and forking it per cell:
//!
//! - [`SnapshotStore`]: a small bounded memo of pristine states. A hit
//!   hands out a deep [`Clone`] (the fork); the stored pristine state
//!   is never mutated, so every fork starts from byte-identical state.
//! - [`Digest`] / [`StateDigest`]: an incremental 128-bit FNV-1a
//!   digest over simulated state, used by the fork-equivalence oracle
//!   (`experiments`): digest(forked stack) must equal digest(freshly
//!   built stack), proving warm-start cannot change results.
//! - [`enabled`]: the `DUET_SNAPSHOT` escape hatch — `0` bypasses
//!   warm-start entirely and every cell rebuilds from scratch.
//!
//! Determinism: a fork is a deep clone of deterministic state, so a
//! forked run and a fresh run consume identical RNG streams and
//! produce byte-identical results. The golden CSV fixtures pin this
//! end to end; the state digests pin it at the fork point.
//!
//! Thread-safety: simulated stacks hold non-`Send` handles
//! (`Rc`-based trace/fault handles), so stores are expected to live in
//! `thread_local!` storage — one memo per sweep worker — rather than
//! behind a shared lock.

/// Returns `false` when `DUET_SNAPSHOT=0`: the warm-start escape
/// hatch. Any other value (including unset) leaves snapshotting on.
/// Read per call so tests and harness drivers can flip it between
/// runs.
pub fn enabled() -> bool {
    std::env::var("DUET_SNAPSHOT")
        .map(|v| v != "0")
        .unwrap_or(true)
}

/// Incremental 128-bit FNV-1a digest: two independent 64-bit streams
/// (distinct offset bases) rendered side by side, matching the
/// `fnv128_hex` fixture digests in `experiments::golden`. Collisions
/// would need to defeat both streams.
#[derive(Debug, Clone)]
pub struct Digest {
    a: u64,
    b: u64,
}

impl Default for Digest {
    fn default() -> Self {
        Digest::new()
    }
}

impl Digest {
    /// A fresh digest at the FNV-1a offset bases.
    pub fn new() -> Digest {
        Digest {
            a: 0xcbf29ce484222325,
            b: 0x6c62272e07bb0142,
        }
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a ^= byte as u64;
            self.a = self.a.wrapping_mul(0x100000001b3);
            self.b ^= byte as u64;
            self.b = self.b.wrapping_mul(0x1000000000001b3);
        }
    }

    /// Feeds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `usize` as `u64`.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds a `u32`.
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a bool as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_bytes(&[v as u8]);
    }

    /// Feeds an `f64` by bit pattern (never display rounding).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Feeds a string (length-prefixed so concatenations cannot
    /// collide).
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The 32-hex-character rendering of the current state.
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.a, self.b)
    }
}

/// Simulated state that can feed a [`Digest`] — implemented by each
/// stack layer (disk, cache, filesystems, framework, workload) so the
/// fork-equivalence oracle can compare a forked stack against a
/// freshly built one field by field.
pub trait StateDigest {
    /// Feeds every deterministic observable of `self` into `d`.
    /// Implementations must cover all state that can influence future
    /// simulation (clocks, queues, indexes, RNG streams) and must not
    /// read anything nondeterministic.
    fn digest_state(&self, d: &mut Digest);

    /// Convenience: the hex digest of `self` alone.
    fn state_digest_hex(&self) -> String {
        let mut d = Digest::new();
        self.digest_state(&mut d);
        d.hex()
    }
}

/// A bounded memo of pristine snapshots, FIFO-evicted. `fork` clones
/// the stored state; the pristine copy is never handed out mutably.
///
/// Capacity is small by design: a sweep touches a handful of distinct
/// setup prefixes (one per row, two where fragmentation differs) in
/// row-major order, so a few slots give near-perfect reuse while
/// bounding resident filesystem images.
#[derive(Debug)]
pub struct SnapshotStore<K, T> {
    /// Insertion-ordered (oldest first) pristine snapshots.
    entries: Vec<(K, T)>,
    cap: usize,
    hits: u64,
    misses: u64,
}

impl<K: PartialEq, T: Clone> SnapshotStore<K, T> {
    /// A store holding at most `cap` pristine snapshots (min 1).
    pub fn with_capacity(cap: usize) -> Self {
        SnapshotStore {
            entries: Vec::new(),
            cap: cap.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// Returns a fork of the snapshot for `key`, building (and
    /// memoizing) the pristine state with `build` on a miss. The
    /// returned value is always a fresh deep clone — mutating it
    /// cannot affect later forks of the same key.
    pub fn fork_or_build<E>(
        &mut self,
        key: K,
        build: impl FnOnce() -> Result<T, E>,
    ) -> Result<T, E> {
        if let Some(i) = self.entries.iter().position(|(k, _)| *k == key) {
            self.hits += 1;
            return Ok(self.entries[i].1.clone());
        }
        let pristine = build()?;
        self.misses += 1;
        if self.entries.len() >= self.cap {
            self.entries.remove(0);
        }
        let fork = pristine.clone();
        self.entries.push((key, pristine));
        Ok(fork)
    }

    /// Snapshots currently resident.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no snapshot is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Forks served from a resident snapshot.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Builds performed (including those later evicted).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drops every resident snapshot (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic_and_order_sensitive() {
        let mut a = Digest::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Digest::new();
        b.write_u64(1);
        b.write_u64(2);
        assert_eq!(a.hex(), b.hex());
        let mut c = Digest::new();
        c.write_u64(2);
        c.write_u64(1);
        assert_ne!(a.hex(), c.hex(), "order must matter");
        assert_eq!(a.hex().len(), 32);
    }

    #[test]
    fn digest_length_prefix_prevents_concat_collisions() {
        let mut a = Digest::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Digest::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.hex(), b.hex());
    }

    #[test]
    fn store_forks_are_independent_of_the_pristine_state() {
        let mut store: SnapshotStore<u32, Vec<u64>> = SnapshotStore::with_capacity(2);
        let built: Result<Vec<u64>, ()> = store.fork_or_build(7, || Ok(vec![1, 2, 3]));
        let mut fork = built.unwrap();
        fork.push(99); // Mutating a fork...
        let again: Vec<u64> = store.fork_or_build(7, || Err(())).unwrap();
        assert_eq!(again, vec![1, 2, 3], "...must not taint later forks");
        assert_eq!(store.hits(), 1);
        assert_eq!(store.misses(), 1);
    }

    #[test]
    fn store_evicts_fifo_at_capacity() {
        let mut store: SnapshotStore<u32, u32> = SnapshotStore::with_capacity(2);
        for k in 0..3u32 {
            let _: Result<u32, ()> = store.fork_or_build(k, || Ok(k * 10));
        }
        assert_eq!(store.len(), 2);
        // Key 0 was evicted: rebuilding it is a miss.
        let rebuilt: u32 = store.fork_or_build(0, || Ok::<_, ()>(42)).unwrap();
        assert_eq!(rebuilt, 42);
        assert_eq!(store.misses(), 4);
        assert_eq!(store.hits(), 0);
    }

    #[test]
    fn build_errors_propagate_and_memoize_nothing() {
        let mut store: SnapshotStore<u32, u32> = SnapshotStore::with_capacity(2);
        let err: Result<u32, &str> = store.fork_or_build(1, || Err("boom"));
        assert_eq!(err, Err("boom"));
        assert!(store.is_empty());
        assert_eq!(store.misses(), 0, "failed builds are not counted");
    }
}
