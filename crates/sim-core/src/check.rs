//! Zero-dependency deterministic property-test helper.
//!
//! [`forall`] runs a property over a fixed budget of cases. Case `i`
//! gets its own [`SimRng`] seeded with `base_seed ^ i`, so any failing
//! case replays in isolation from the single seed printed in the
//! failure report — no shrinking needed, just re-run with that seed.
//!
//! Properties report failure either by returning `Err(String)` or by
//! panicking (e.g. via `assert_eq!`); both are captured and turned into
//! a [`CheckFailure`] naming the reproducing seed.

use crate::rng::SimRng;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};

/// Configuration for one property run: a name for reports, a case
/// budget, and the base seed the per-case seeds are derived from.
#[derive(Debug, Clone, Copy)]
pub struct CheckConfig {
    /// Property name used in failure reports.
    pub name: &'static str,
    /// Number of cases to run.
    pub cases: u64,
    /// Base seed; case `i` uses `seed ^ i`.
    pub seed: u64,
}

impl CheckConfig {
    /// A config with the default budget of 128 cases.
    pub fn new(name: &'static str, seed: u64) -> CheckConfig {
        CheckConfig {
            name,
            cases: 128,
            seed,
        }
    }

    /// Override the case budget.
    pub fn cases(mut self, cases: u64) -> CheckConfig {
        self.cases = cases;
        self
    }
}

/// A failed property case, carrying everything needed to replay it.
#[derive(Clone)]
pub struct CheckFailure {
    /// Property name from the config.
    pub name: &'static str,
    /// Which case (0-based) failed.
    pub case: u64,
    /// The exact seed to hand `SimRng::new` to replay this case.
    pub case_seed: u64,
    /// The failure message (returned error or panic payload).
    pub message: String,
}

impl fmt::Display for CheckFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "property '{}' failed at case {}: {}\n  replay: SimRng::new({:#x})",
            self.name, self.case, self.message, self.case_seed
        )
    }
}

// Debug mirrors Display so `.unwrap()` in tests prints the replay seed.
impl fmt::Debug for CheckFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Run `prop` over `cfg.cases` deterministic cases, stopping at the
/// first failure. The property receives the case index and a fresh
/// per-case RNG; it fails by returning `Err` or by panicking.
pub fn forall<F>(cfg: &CheckConfig, mut prop: F) -> Result<(), CheckFailure>
where
    F: FnMut(u64, &mut SimRng) -> Result<(), String>,
{
    for case in 0..cfg.cases {
        let case_seed = cfg.seed ^ case;
        let mut rng = SimRng::new(case_seed);
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| prop(case, &mut rng)));
        let message = match outcome {
            Ok(Ok(())) => continue,
            Ok(Err(msg)) => msg,
            Err(payload) => panic_message(payload.as_ref()),
        };
        return Err(CheckFailure {
            name: cfg.name,
            case,
            case_seed,
            message,
        });
    }
    Ok(())
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut seen = 0u64;
        let cfg = CheckConfig::new("count", 1).cases(17);
        forall(&cfg, |_case, _rng| {
            seen += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, 17);
    }

    #[test]
    fn failure_reports_reproducing_seed() {
        let cfg = CheckConfig::new("fails-at-5", 0xF00).cases(64);
        let failure = forall(&cfg, |case, _rng| {
            if case == 5 {
                Err("boom".to_string())
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        assert_eq!(failure.case, 5);
        assert_eq!(failure.case_seed, 0xF00 ^ 5);
        let report = failure.to_string();
        assert!(report.contains("fails-at-5"), "{report}");
        assert!(report.contains("boom"), "{report}");
        assert!(report.contains(&format!("{:#x}", 0xF00u64 ^ 5)), "{report}");
    }

    #[test]
    fn panics_are_captured_with_seed() {
        let cfg = CheckConfig::new("panics", 3).cases(8);
        let failure = forall(&cfg, |case, rng| {
            let x = rng.gen_range(0, 100);
            assert!(case < 2, "panicked with x={x}");
            Ok(())
        })
        .unwrap_err();
        assert_eq!(failure.case, 2);
        assert!(failure.message.contains("panicked with x="));
    }

    #[test]
    fn per_case_rng_is_deterministic() {
        let mut first = Vec::new();
        let cfg = CheckConfig::new("det", 0xABCD).cases(4);
        forall(&cfg, |_case, rng| {
            first.push(rng.next_u64());
            Ok(())
        })
        .unwrap();
        // Replaying one case in isolation sees the same stream.
        let mut rng = SimRng::new(0xABCD ^ 2);
        assert_eq!(rng.next_u64(), first[2]);
    }
}
