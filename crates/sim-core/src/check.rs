//! Zero-dependency deterministic property-test helper.
//!
//! [`forall`] runs a property over a fixed budget of cases. Case `i`
//! gets its own [`SimRng`] seeded with `base_seed ^ i`, so any failing
//! case replays in isolation from the single seed printed in the
//! failure report — no shrinking needed, just re-run with that seed.
//!
//! Properties report failure either by returning `Err(String)` or by
//! panicking (e.g. via `assert_eq!`); both are captured and turned into
//! a [`CheckFailure`] naming the reproducing seed.
//!
//! [`differential`] builds on the same machinery for **differential
//! model testing**: a seeded stream of operations is generated into an
//! explicit op log, the log is replayed against both the container
//! under test and a reference oracle (typically `BTreeMap`), and a
//! failing log is *shrunk* — greedy delta-debugging over the op list —
//! before being reported, so the failure names both the replay seed and
//! a minimal operation sequence.

use crate::rng::SimRng;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};

/// Configuration for one property run: a name for reports, a case
/// budget, and the base seed the per-case seeds are derived from.
#[derive(Debug, Clone, Copy)]
pub struct CheckConfig {
    /// Property name used in failure reports.
    pub name: &'static str,
    /// Number of cases to run.
    pub cases: u64,
    /// Base seed; case `i` uses `seed ^ i`.
    pub seed: u64,
}

impl CheckConfig {
    /// A config with the default budget of 128 cases.
    pub fn new(name: &'static str, seed: u64) -> CheckConfig {
        CheckConfig {
            name,
            cases: 128,
            seed,
        }
    }

    /// Override the case budget.
    pub fn cases(mut self, cases: u64) -> CheckConfig {
        self.cases = cases;
        self
    }
}

/// A failed property case, carrying everything needed to replay it.
#[derive(Clone)]
pub struct CheckFailure {
    /// Property name from the config.
    pub name: &'static str,
    /// Which case (0-based) failed.
    pub case: u64,
    /// The exact seed to hand `SimRng::new` to replay this case.
    pub case_seed: u64,
    /// The failure message (returned error or panic payload).
    pub message: String,
}

impl fmt::Display for CheckFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "property '{}' failed at case {}: {}\n  replay: SimRng::new({:#x})",
            self.name, self.case, self.message, self.case_seed
        )
    }
}

// Debug mirrors Display so `.unwrap()` in tests prints the replay seed.
impl fmt::Debug for CheckFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Run `prop` over `cfg.cases` deterministic cases, stopping at the
/// first failure. The property receives the case index and a fresh
/// per-case RNG; it fails by returning `Err` or by panicking.
pub fn forall<F>(cfg: &CheckConfig, mut prop: F) -> Result<(), CheckFailure>
where
    F: FnMut(u64, &mut SimRng) -> Result<(), String>,
{
    for case in 0..cfg.cases {
        let case_seed = cfg.seed ^ case;
        let mut rng = SimRng::new(case_seed);
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| prop(case, &mut rng)));
        let message = match outcome {
            Ok(Ok(())) => continue,
            Ok(Err(msg)) => msg,
            Err(payload) => panic_message(payload.as_ref()),
        };
        return Err(CheckFailure {
            name: cfg.name,
            case,
            case_seed,
            message,
        });
    }
    Ok(())
}

/// Configuration for a differential (container vs oracle) run.
#[derive(Debug, Clone, Copy)]
pub struct DiffConfig {
    /// Test name used in failure reports.
    pub name: &'static str,
    /// Number of independent op-log cases (≥ 10 for the CI fuzz bar).
    pub cases: u64,
    /// Operations generated per case.
    pub ops: u64,
    /// Base seed; case `i` generates its log from `seed ^ i`.
    pub seed: u64,
}

impl DiffConfig {
    /// A config with the default budget of 16 cases × 2000 ops.
    pub fn new(name: &'static str, seed: u64) -> DiffConfig {
        DiffConfig {
            name,
            cases: 16,
            ops: 2000,
            seed,
        }
    }

    /// Override the case budget.
    pub fn cases(mut self, cases: u64) -> DiffConfig {
        self.cases = cases;
        self
    }

    /// Override the per-case op budget.
    pub fn ops(mut self, ops: u64) -> DiffConfig {
        self.ops = ops;
        self
    }
}

/// A failed differential case: the replay seed plus the shrunk op log.
#[derive(Clone)]
pub struct DiffFailure {
    /// Test name from the config.
    pub name: &'static str,
    /// Which case (0-based) failed.
    pub case: u64,
    /// Seed that regenerates the *full* failing op log.
    pub case_seed: u64,
    /// Failure message from the minimized replay.
    pub message: String,
    /// Debug renderings of the minimized failing op log.
    pub ops: Vec<String>,
    /// Length of the log before shrinking.
    pub original_len: usize,
}

impl fmt::Display for DiffFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "differential test '{}' failed at case {}: {}\n  replay: seed {:#x} \
             (DUET_CHECK_SEED overrides the base seed)\n  shrunk {} ops -> {}:",
            self.name,
            self.case,
            self.message,
            self.case_seed,
            self.original_len,
            self.ops.len()
        )?;
        for op in &self.ops {
            writeln!(f, "    {op}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for DiffFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Runs `replay` (which must apply the ops to both the container under
/// test and the reference oracle, comparing observables as it goes)
/// over `cfg.cases` independently seeded op logs produced by `generate`.
/// On the first failing log, greedily shrinks it to a locally minimal
/// failing subsequence and reports that.
///
/// `replay` fails by returning `Err` or by panicking (`assert_eq!`);
/// both are captured. Generation is split from replay precisely so the
/// shrinker can re-run arbitrary sub-logs.
pub fn differential<Op, G, R>(
    cfg: &DiffConfig,
    mut generate: G,
    mut replay: R,
) -> Result<(), DiffFailure>
where
    Op: Clone + fmt::Debug,
    G: FnMut(&mut SimRng, u64) -> Op,
    R: FnMut(&[Op]) -> Result<(), String>,
{
    for case in 0..cfg.cases {
        let case_seed = cfg.seed ^ case;
        let mut rng = SimRng::new(case_seed);
        let log: Vec<Op> = (0..cfg.ops).map(|i| generate(&mut rng, i)).collect();
        let Some(message) = run_log(&mut replay, &log) else {
            continue;
        };
        let original_len = log.len();
        let (shrunk, message) = shrink(&mut replay, log, message);
        return Err(DiffFailure {
            name: cfg.name,
            case,
            case_seed,
            message,
            ops: shrunk.iter().map(|op| format!("{op:?}")).collect(),
            original_len,
        });
    }
    Ok(())
}

/// Replays a log, capturing panics. `None` = passed, `Some(msg)` = failed.
fn run_log<Op, R>(replay: &mut R, log: &[Op]) -> Option<String>
where
    R: FnMut(&[Op]) -> Result<(), String>,
{
    match panic::catch_unwind(AssertUnwindSafe(|| replay(log))) {
        Ok(Ok(())) => None,
        Ok(Err(msg)) => Some(msg),
        Err(payload) => Some(panic_message(payload.as_ref())),
    }
}

/// Greedy delta-debugging: repeatedly delete chunks (halving the chunk
/// size down to single ops) while the log still fails. Deterministic —
/// pure function of the starting log and the replay outcome.
fn shrink<Op, R>(replay: &mut R, mut log: Vec<Op>, mut message: String) -> (Vec<Op>, String)
where
    Op: Clone,
    R: FnMut(&[Op]) -> Result<(), String>,
{
    let mut chunk = (log.len() / 2).max(1);
    loop {
        let mut progressed = false;
        let mut start = 0;
        while start < log.len() {
            let end = (start + chunk).min(log.len());
            let mut candidate = Vec::with_capacity(log.len() - (end - start));
            candidate.extend_from_slice(&log[..start]);
            candidate.extend_from_slice(&log[end..]);
            if candidate.is_empty() {
                start = end;
                continue;
            }
            if let Some(msg) = run_log(replay, &candidate) {
                log = candidate;
                message = msg;
                progressed = true;
                // Re-test the same offset: the next chunk slid into it.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !progressed {
            return (log, message);
        }
        if !progressed {
            chunk = (chunk / 2).max(1);
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut seen = 0u64;
        let cfg = CheckConfig::new("count", 1).cases(17);
        forall(&cfg, |_case, _rng| {
            seen += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, 17);
    }

    #[test]
    fn failure_reports_reproducing_seed() {
        let cfg = CheckConfig::new("fails-at-5", 0xF00).cases(64);
        let failure = forall(&cfg, |case, _rng| {
            if case == 5 {
                Err("boom".to_string())
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        assert_eq!(failure.case, 5);
        assert_eq!(failure.case_seed, 0xF00 ^ 5);
        let report = failure.to_string();
        assert!(report.contains("fails-at-5"), "{report}");
        assert!(report.contains("boom"), "{report}");
        assert!(report.contains(&format!("{:#x}", 0xF00u64 ^ 5)), "{report}");
    }

    #[test]
    fn panics_are_captured_with_seed() {
        let cfg = CheckConfig::new("panics", 3).cases(8);
        let failure = forall(&cfg, |case, rng| {
            let x = rng.gen_range(0, 100);
            assert!(case < 2, "panicked with x={x}");
            Ok(())
        })
        .unwrap_err();
        assert_eq!(failure.case, 2);
        assert!(failure.message.contains("panicked with x="));
    }

    #[test]
    fn differential_passes_when_models_agree() {
        let cfg = DiffConfig::new("agree", 0xD1FF).cases(4).ops(200);
        let mut replays = 0u64;
        differential(
            &cfg,
            |rng, _| rng.gen_range(0, 100),
            |log: &[u64]| {
                replays += 1;
                // Two identical folds over the log always agree.
                let a: u64 = log.iter().sum();
                let b: u64 = log.iter().sum();
                if a == b {
                    Ok(())
                } else {
                    Err("sum mismatch".into())
                }
            },
        )
        .unwrap();
        assert_eq!(replays, 4, "one replay per passing case");
    }

    #[test]
    fn differential_shrinks_to_minimal_failing_log() {
        // A "model" that breaks iff the log contains both a 7 and a 13:
        // the minimal failing log is exactly two ops.
        let cfg = DiffConfig::new("shrinks", 0).cases(8).ops(400);
        let failure = differential(
            &cfg,
            |rng, _| rng.gen_range(0, 16),
            |log: &[u64]| {
                if log.contains(&7) && log.contains(&13) {
                    Err("7 and 13 collided".into())
                } else {
                    Ok(())
                }
            },
        )
        .unwrap_err();
        assert_eq!(failure.ops.len(), 2, "{failure}");
        assert_eq!(failure.original_len, 400);
        assert!(failure.message.contains("collided"));
        let report = failure.to_string();
        assert!(report.contains("replay: seed"), "{report}");
        assert!(report.contains("shrunk 400 ops -> 2"), "{report}");
    }

    #[test]
    fn differential_captures_panics_and_reports_seed() {
        let cfg = DiffConfig::new("panics", 0xBAD).cases(3).ops(10);
        let failure = differential(
            &cfg,
            |rng, _| rng.gen_range(0, 4),
            |_log: &[u64]| -> Result<(), String> { panic!("kaboom") },
        )
        .unwrap_err();
        assert_eq!(failure.case, 0);
        assert_eq!(failure.case_seed, 0xBAD);
        assert!(failure.message.contains("kaboom"));
        assert_eq!(failure.ops.len(), 1, "shrunk to a single op");
    }

    #[test]
    fn per_case_rng_is_deterministic() {
        let mut first = Vec::new();
        let cfg = CheckConfig::new("det", 0xABCD).cases(4);
        forall(&cfg, |_case, rng| {
            first.push(rng.next_u64());
            Ok(())
        })
        .unwrap();
        // Replaying one case in isolation sees the same stream.
        let mut rng = SimRng::new(0xABCD ^ 2);
        assert_eq!(rng.next_u64(), first[2]);
    }
}
