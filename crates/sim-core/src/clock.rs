//! Virtual time for the discrete-event simulation.
//!
//! Every latency in the reproduction — disk service times, workload
//! inter-arrival gaps, idle-grace windows — is expressed in virtual
//! nanoseconds. Experiments advance a [`Clock`] instead of sleeping, so
//! a 30-minute run (the paper's experiment length, §6.1.3) finishes in
//! milliseconds of wall-clock time and is perfectly reproducible.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of virtual time with nanosecond resolution.
///
/// Backed by a `u64`, which covers ~584 years — far beyond any
/// experiment length.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The longest representable duration (~584 years).
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60 * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Returns the duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction; clamps at zero instead of underflowing.
    pub const fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Saturating addition; clamps at [`SimDuration::MAX`].
    pub const fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Saturating scalar multiplication; clamps at
    /// [`SimDuration::MAX`] instead of overflowing (the plain `*`
    /// operator panics on overflow in debug builds).
    pub const fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Returns true if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the duration by a non-negative float, rounding to the
    /// nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `f` is negative or not finite.
    pub fn mul_f64(self, f: f64) -> SimDuration {
        assert!(f.is_finite() && f >= 0.0, "invalid scale factor: {f}");
        SimDuration((self.0 as f64 * f).round() as u64)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{}ns", ns)
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

/// A point in virtual time, measured from the start of the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimInstant(u64);

impl SimInstant {
    /// The origin of virtual time.
    pub const EPOCH: SimInstant = SimInstant(0);

    /// Creates an instant at `ns` nanoseconds past the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimInstant(ns)
    }

    /// Returns nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimInstant) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "duration_since: earlier ({earlier}) is after self ({self})"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Returns the elapsed duration, or zero if `earlier` is in the future.
    pub const fn saturating_duration_since(self, earlier: SimInstant) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Debug for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimInstant {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn sub(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0 - rhs.0)
    }
}

/// The virtual clock driving a simulation.
///
/// The clock only moves forward, via [`Clock::advance`] or
/// [`Clock::advance_to`]. All components of a simulation share one clock
/// through `Rc<RefCell<Clock>>` or by explicit threading; the experiment
/// runner owns it.
///
/// # Examples
///
/// ```
/// use sim_core::{Clock, SimDuration};
///
/// let mut clock = Clock::new();
/// clock.advance(SimDuration::from_millis(5));
/// assert_eq!(clock.now().as_nanos(), 5_000_000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now: SimInstant,
}

impl Clock {
    /// Creates a clock at the epoch.
    pub fn new() -> Self {
        Clock {
            now: SimInstant::EPOCH,
        }
    }

    /// Returns the current virtual time.
    pub fn now(&self) -> SimInstant {
        self.now
    }

    /// Advances the clock by `d`.
    pub fn advance(&mut self, d: SimDuration) {
        self.now += d;
    }

    /// Advances the clock to `t` if `t` is in the future; otherwise a
    /// no-op. Returns the (possibly unchanged) current time.
    pub fn advance_to(&mut self, t: SimInstant) -> SimInstant {
        if t > self.now {
            self.now = t;
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(3);
        let b = SimDuration::from_millis(2);
        assert_eq!(a + b, SimDuration::from_millis(5));
        assert_eq!(a - b, SimDuration::from_millis(1));
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
        assert_eq!(a * 4, SimDuration::from_millis(12));
        assert_eq!(a / 3, SimDuration::from_millis(1));
    }

    #[test]
    fn duration_float_conversions() {
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d, SimDuration::from_millis(1500));
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((d.as_millis_f64() - 1500.0).abs() < 1e-9);
        assert_eq!(d.mul_f64(2.0), SimDuration::from_secs(3));
    }

    #[test]
    fn duration_display_units() {
        assert_eq!(SimDuration::from_nanos(17).to_string(), "17ns");
        assert_eq!(SimDuration::from_micros(17).to_string(), "17.000us");
        assert_eq!(SimDuration::from_millis(17).to_string(), "17.000ms");
        assert_eq!(SimDuration::from_secs(17).to_string(), "17.000s");
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn instant_ordering_and_since() {
        let t0 = SimInstant::EPOCH;
        let t1 = t0 + SimDuration::from_secs(1);
        assert!(t1 > t0);
        assert_eq!(t1.duration_since(t0), SimDuration::from_secs(1));
        assert_eq!(t0.saturating_duration_since(t1), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn instant_duration_since_panics_on_reversal() {
        let t0 = SimInstant::EPOCH;
        let t1 = t0 + SimDuration::from_secs(1);
        let _ = t0.duration_since(t1);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = Clock::new();
        assert_eq!(c.now(), SimInstant::EPOCH);
        c.advance(SimDuration::from_millis(10));
        let t = c.now();
        // advance_to into the past is a no-op.
        c.advance_to(SimInstant::EPOCH);
        assert_eq!(c.now(), t);
        c.advance_to(t + SimDuration::from_millis(5));
        assert_eq!(c.now().duration_since(t), SimDuration::from_millis(5));
    }
}
