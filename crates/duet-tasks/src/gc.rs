//! F2fs garbage collection (§5.4 of the paper).
//!
//! The background cleaner "cycles through 4096 segments at a time
//! (instead of all segments on the device), and cleans one segment with
//! the minimum cost". The opportunistic cleaner registers for
//! `Exists ∨ Flushed` notifications and keeps per-segment counts of
//! cached valid blocks; its cost function charges
//! `valid_blocks − cached_blocks/2` because a cached block saves the
//! read half of its migration. On a flush, the block moves to a new
//! segment, so counters are adjusted for both the old and the new
//! segment. "The notion of completed work does not apply to the garbage
//! collector" — the done primitives are unused.

use crate::task::{StepResult, TaskMode};
use duet::{Duet, EventMask, ItemFlags, SessionId, TaskScope};
use sim_core::trace::TraceLayer;
use sim_core::{SegmentNr, SimError, SimInstant, SimResult};
use sim_disk::IoClass;
use sim_f2fs::{cleaning_cost, CleanResult, F2fsSim, SegState, VictimPolicy};
use std::collections::BTreeMap;

const FETCH_BATCH: usize = 256;

/// Execution context for the garbage collector.
pub struct GcCtx<'a> {
    /// The log-structured filesystem.
    pub fs: &'a mut F2fsSim,
    /// The Duet framework instance.
    pub duet: &'a mut Duet,
    /// Current virtual time.
    pub now: SimInstant,
}

/// The background segment cleaner.
pub struct GarbageCollector {
    mode: TaskMode,
    class: IoClass,
    policy: VictimPolicy,
    sid: Option<SessionId>,
    /// Segments examined per invocation (the paper's 4096).
    window: u32,
    cursor: u32,
    /// Event-derived cached-valid-block counts per segment.
    cached: BTreeMap<u32, i64>,
    /// Cleaning outcomes, in order (Table 6's raw data).
    pub results: Vec<CleanResult>,
    /// Test-only defect switch: lose one block per cleaning (oracle
    /// self-test).
    sabotage: bool,
    started: bool,
}

impl GarbageCollector {
    /// Creates a cleaner with the given victim policy.
    pub fn new(mode: TaskMode, policy: VictimPolicy) -> Self {
        GarbageCollector {
            mode,
            class: IoClass::Idle,
            policy,
            sid: None,
            window: 4096,
            cursor: 0,
            cached: BTreeMap::new(),
            results: Vec::new(),
            sabotage: false,
            started: false,
        }
    }

    /// Sabotage switch for oracle self-tests: each cleaning silently
    /// loses its first migrated block — the victim page ends up
    /// unmapped, with no error reported.
    #[doc(hidden)]
    pub fn sabotage_lose_block(&mut self) {
        self.sabotage = true;
    }

    /// Overrides the victim-selection window (for scaled-down tests).
    pub fn with_window(mut self, window: u32) -> Self {
        self.window = window.max(1);
        self
    }

    /// Display name.
    pub fn name(&self) -> String {
        match self.mode {
            TaskMode::Baseline => "gc(baseline)".into(),
            TaskMode::Duet => "gc(duet)".into(),
        }
    }

    /// One-time setup; registers the Duet session in Duet mode.
    pub fn start(&mut self, ctx: GcCtx<'_>) -> SimResult<()> {
        if self.mode == TaskMode::Duet {
            match ctx.duet.register(
                TaskScope::Block {
                    device: ctx.fs.device(),
                },
                EventMask::EXISTS | EventMask::FLUSHED,
                ctx.fs,
            ) {
                Ok(sid) => self.sid = Some(sid),
                // All session slots taken: clean greedily without
                // cache-residency hints.
                Err(SimError::TooManySessions) => {}
                Err(e) => return Err(e),
            }
        }
        self.started = true;
        Ok(())
    }

    fn seg_of(&self, fs: &F2fsSim, block: sim_core::BlockNr) -> u32 {
        fs.segment_of_block(block).raw()
    }

    fn bump(&mut self, seg: u32, delta: i64) {
        let e = self.cached.entry(seg).or_insert(0);
        *e = (*e + delta).max(0);
    }

    fn drain_events(&mut self, ctx: &mut GcCtx<'_>) -> SimResult<()> {
        let Some(sid) = self.sid else {
            return Ok(());
        };
        loop {
            let items = match ctx.duet.fetch(sid, FETCH_BATCH, ctx.fs) {
                Ok(items) => items,
                Err(SimError::InvalidSession(_)) => {
                    // Session vanished: degrade to cost-only cleaning.
                    self.sid = None;
                    return Ok(());
                }
                Err(e) => return Err(e),
            };
            if items.is_empty() {
                return Ok(());
            }
            for item in items {
                let Some(block) = item.id.as_block() else {
                    continue;
                };
                let seg = self.seg_of(ctx.fs, block);
                if item.flags.contains(ItemFlags::FLUSHED) {
                    // The page migrated to a new log block: "adjust the
                    // in-memory counters for both the old and new
                    // segments" (§5.4).
                    self.bump(seg, -1);
                    if let Some(nb) = item.moved_to {
                        let nseg = self.seg_of(ctx.fs, nb);
                        self.bump(nseg, 1);
                    }
                } else if item.flags.contains(ItemFlags::EXISTS) {
                    self.bump(seg, 1);
                } else if item.flags.contains(ItemFlags::NOT_EXISTS) {
                    self.bump(seg, -1);
                }
            }
        }
    }

    /// Event-derived cached count for a segment (0 in baseline mode).
    pub fn cached_estimate(&self, seg: SegmentNr) -> u32 {
        self.cached
            .get(&seg.raw())
            .map(|&c| c.max(0) as u32)
            .unwrap_or(0)
    }

    /// Picks a victim in the current window and cleans it. Returns the
    /// result, or `None` when no full segment is available to clean.
    pub fn step(&mut self, mut ctx: GcCtx<'_>) -> SimResult<Option<StepResult>> {
        assert!(self.started, "step before start");
        self.drain_events(&mut ctx)?;
        let nsegs = ctx.fs.nsegs();
        let window = self.window.min(nsegs);
        let now_mtime = ctx.fs.write_clock();
        let seg_blocks = ctx.fs.seg_blocks() as u32;
        let mut best: Option<(f64, u32)> = None;
        for i in 0..window {
            let s = (self.cursor + i) % nsegs;
            let info = *ctx.fs.segment(SegmentNr(s));
            if info.state != SegState::Full || info.valid == 0 {
                // Free/open segments are not cleaning victims; empty
                // full segments free themselves.
                continue;
            }
            let cached = match self.mode {
                TaskMode::Duet => self.cached_estimate(SegmentNr(s)),
                TaskMode::Baseline => 0,
            };
            let cost = cleaning_cost(self.policy, &info, seg_blocks, cached, now_mtime);
            if best.is_none_or(|(bc, _)| cost < bc) {
                best = Some((cost, s));
            }
        }
        self.cursor = (self.cursor + window) % nsegs;
        let Some((_, victim)) = best else {
            return Ok(None);
        };
        // Work-item context span: the victim clean (and its disk I/O)
        // is parented here, with the hint-vs-scan provenance of the
        // victim choice.
        let cached_hint = match self.mode {
            TaskMode::Duet => self.cached_estimate(SegmentNr(victim)),
            TaskMode::Baseline => 0,
        };
        let span = ctx.fs.trace().map(|t| {
            t.ctx_begin(TraceLayer::Task, "gc.clean", ctx.now, || {
                vec![
                    ("seg", victim.into()),
                    ("cached", cached_hint.into()),
                    ("src", if cached_hint > 0 { "hint" } else { "scan" }.into()),
                ]
            })
        });
        let first_victim = if self.sabotage {
            ctx.fs
                .valid_blocks_of(SegmentNr(victim))
                .first()
                .map(|&(_, ino, idx)| (ino, idx))
        } else {
            None
        };
        let result = ctx
            .fs
            .clean_segment(SegmentNr(victim), self.class, ctx.now)?;
        if let Some((ino, idx)) = first_victim {
            // Sabotage mode: the migrated copy of the first victim
            // block is silently dropped.
            ctx.fs.sabotage_drop_mapping(ino, idx)?;
        }
        if let (Some(t), Some(id)) = (ctx.fs.trace(), span) {
            t.ctx_end(id, result.finish);
        }
        // Cleaning dirtied every valid page; the flush events will move
        // the counters to the new segments as they drain.
        self.results.push(result);
        Ok(Some(StepResult {
            finish: result.finish,
            complete: false,
        }))
    }

    /// Mean segment-cleaning time across all cleanings so far (the
    /// Table 6 statistic), in milliseconds.
    pub fn mean_cleaning_ms(&self) -> f64 {
        if self.results.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .results
            .iter()
            .map(|r| r.duration.as_millis_f64())
            .sum();
        total / self.results.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bridge::pump_f2fs;
    use sim_core::{DeviceId, PAGE_SIZE};
    use sim_disk::{Disk, HddModel};

    const T0: SimInstant = SimInstant::EPOCH;

    fn setup(nsegs: u32, seg_blocks: u64) -> (F2fsSim, Duet) {
        let disk = Disk::new(Box::new(HddModel::sas_10k(nsegs as u64 * seg_blocks)));
        let fs = F2fsSim::new(DeviceId(1), disk, 256, seg_blocks);
        (fs, Duet::with_defaults())
    }

    /// Builds a filesystem where segment 0 is mostly invalid.
    fn with_dirty_segment(fs: &mut F2fsSim) -> sim_core::InodeNr {
        let ino = fs.populate_file("a", 8 * PAGE_SIZE).unwrap();
        fs.populate_file("b", 8 * PAGE_SIZE).unwrap();
        // Overwrite most of file a: seg 0 becomes mostly invalid.
        fs.write(ino, 0, 6 * PAGE_SIZE, IoClass::Normal, T0)
            .unwrap();
        fs.background_writeback(64, IoClass::Normal, T0).unwrap();
        ino
    }

    #[test]
    fn baseline_gc_picks_most_invalid_segment() {
        let (mut fs, mut duet) = setup(8, 8);
        with_dirty_segment(&mut fs);
        let mut gc = GarbageCollector::new(TaskMode::Baseline, VictimPolicy::Greedy).with_window(8);
        gc.start(GcCtx {
            fs: &mut fs,
            duet: &mut duet,
            now: T0,
        })
        .unwrap();
        let r = gc
            .step(GcCtx {
                fs: &mut fs,
                duet: &mut duet,
                now: T0,
            })
            .unwrap()
            .expect("a victim exists");
        assert!(!r.complete);
        assert_eq!(gc.results.len(), 1);
        assert_eq!(gc.results[0].seg, SegmentNr(0), "most invalid segment");
        assert_eq!(gc.results[0].valid_blocks, 2);
    }

    /// Segment 0 keeps 6 valid blocks, segment 1 keeps 4: the baseline
    /// greedy cleaner picks segment 1, but with segment 0's valid
    /// blocks cached the Duet cost 6 − 6/2 = 3 beats 4.
    fn two_segment_scenario() -> (F2fsSim, sim_core::InodeNr) {
        let disk = Disk::new(Box::new(HddModel::sas_10k(64)));
        let mut fs = F2fsSim::new(DeviceId(1), disk, 256, 8);
        let a = fs.populate_file("a", 8 * PAGE_SIZE).unwrap(); // seg 0
        let b = fs.populate_file("b", 8 * PAGE_SIZE).unwrap(); // seg 1
        fs.write(a, 0, 2 * PAGE_SIZE, IoClass::Normal, T0).unwrap();
        fs.write(b, 0, 4 * PAGE_SIZE, IoClass::Normal, T0).unwrap();
        fs.background_writeback(64, IoClass::Normal, T0).unwrap();
        assert_eq!(fs.segment(SegmentNr(0)).valid, 6);
        assert_eq!(fs.segment(SegmentNr(1)).valid, 4);
        (fs, a)
    }

    #[test]
    fn baseline_gc_picks_fewest_valid_despite_cache() {
        let (mut fs, a) = two_segment_scenario();
        let mut duet = Duet::with_defaults();
        let mut base =
            GarbageCollector::new(TaskMode::Baseline, VictimPolicy::Greedy).with_window(8);
        base.start(GcCtx {
            fs: &mut fs,
            duet: &mut duet,
            now: T0,
        })
        .unwrap();
        // Cache segment 0's valid blocks; the baseline ignores that.
        fs.read(a, 2 * PAGE_SIZE, 6 * PAGE_SIZE, IoClass::Normal, T0)
            .unwrap();
        base.step(GcCtx {
            fs: &mut fs,
            duet: &mut duet,
            now: T0,
        })
        .unwrap()
        .expect("victim");
        assert_eq!(base.results[0].seg, SegmentNr(1));
    }

    #[test]
    fn duet_gc_prefers_cached_segments() {
        let (mut fs, a) = two_segment_scenario();
        let mut duet = Duet::with_defaults();
        let mut gc = GarbageCollector::new(TaskMode::Duet, VictimPolicy::Greedy).with_window(8);
        gc.start(GcCtx {
            fs: &mut fs,
            duet: &mut duet,
            now: T0,
        })
        .unwrap();
        fs.read(a, 2 * PAGE_SIZE, 6 * PAGE_SIZE, IoClass::Normal, T0)
            .unwrap();
        pump_f2fs(&mut fs, &mut duet);
        gc.step(GcCtx {
            fs: &mut fs,
            duet: &mut duet,
            now: T0,
        })
        .unwrap()
        .expect("victim");
        let res = gc.results[0];
        assert_eq!(res.seg, SegmentNr(0), "cached segment preferred");
        assert_eq!(res.cached_blocks, 6);
        assert_eq!(res.blocks_read, 0, "all valid blocks were cached");
    }

    #[test]
    fn flushed_events_move_counters_between_segments() {
        let (mut fs, mut duet) = setup(8, 8);
        let ino = fs.populate_file("a", 4 * PAGE_SIZE).unwrap();
        let mut gc = GarbageCollector::new(TaskMode::Duet, VictimPolicy::Greedy).with_window(8);
        gc.start(GcCtx {
            fs: &mut fs,
            duet: &mut duet,
            now: T0,
        })
        .unwrap();
        // Cache the file, then dirty + flush one page; it migrates to
        // the log head (still segment 0 here, but the counter paths
        // execute); then force a cross-segment migration by filling.
        fs.read(ino, 0, 4 * PAGE_SIZE, IoClass::Normal, T0).unwrap();
        pump_f2fs(&mut fs, &mut duet);
        let mut ctx = GcCtx {
            fs: &mut fs,
            duet: &mut duet,
            now: T0,
        };
        gc.drain_events(&mut ctx).unwrap();
        assert_eq!(gc.cached_estimate(SegmentNr(0)), 4);
        // Fill the rest of segment 0 so the next flush lands in seg 1.
        fs.populate_file("fill", 4 * PAGE_SIZE).unwrap();
        fs.write(ino, 0, PAGE_SIZE, IoClass::Normal, T0).unwrap();
        fs.background_writeback(64, IoClass::Normal, T0).unwrap();
        pump_f2fs(&mut fs, &mut duet);
        let mut ctx = GcCtx {
            fs: &mut fs,
            duet: &mut duet,
            now: T0,
        };
        gc.drain_events(&mut ctx).unwrap();
        assert_eq!(
            gc.cached_estimate(SegmentNr(0)),
            3,
            "old segment decremented"
        );
        assert_eq!(
            gc.cached_estimate(SegmentNr(1)),
            1,
            "new segment incremented"
        );
    }

    #[test]
    fn gc_reports_mean_cleaning_time() {
        let (mut fs, mut duet) = setup(8, 8);
        with_dirty_segment(&mut fs);
        let mut gc = GarbageCollector::new(TaskMode::Baseline, VictimPolicy::Greedy).with_window(8);
        gc.start(GcCtx {
            fs: &mut fs,
            duet: &mut duet,
            now: T0,
        })
        .unwrap();
        gc.step(GcCtx {
            fs: &mut fs,
            duet: &mut duet,
            now: T0,
        })
        .unwrap();
        assert!(gc.mean_cleaning_ms() > 0.0);
    }

    #[test]
    fn cost_benefit_policy_cleans_old_segments() {
        let (mut fs, mut duet) = setup(8, 8);
        with_dirty_segment(&mut fs);
        let mut gc =
            GarbageCollector::new(TaskMode::Baseline, VictimPolicy::CostBenefit).with_window(8);
        gc.start(GcCtx {
            fs: &mut fs,
            duet: &mut duet,
            now: T0,
        })
        .unwrap();
        let r = gc
            .step(GcCtx {
                fs: &mut fs,
                duet: &mut duet,
                now: T0,
            })
            .unwrap()
            .expect("victim");
        assert!(!r.complete);
        // The mostly-invalid old segment is the cost-benefit winner too.
        assert_eq!(gc.results[0].seg, SegmentNr(0));
    }

    #[test]
    fn no_victim_when_nothing_full() {
        let (mut fs, mut duet) = setup(8, 8);
        fs.populate_file("tiny", PAGE_SIZE).unwrap(); // open segment only
        let mut gc = GarbageCollector::new(TaskMode::Baseline, VictimPolicy::Greedy).with_window(8);
        gc.start(GcCtx {
            fs: &mut fs,
            duet: &mut duet,
            now: T0,
        })
        .unwrap();
        assert!(gc
            .step(GcCtx {
                fs: &mut fs,
                duet: &mut duet,
                now: T0,
            })
            .unwrap()
            .is_none());
    }
}
