//! Common maintenance-task machinery.
//!
//! Every task is a resumable state machine: the experiment runner calls
//! [`BtrfsTask::step`] whenever the scheduling policy allows maintenance
//! I/O (idle-priority tasks only get the device's idle gaps, §6.1.3),
//! and each step performs one small chunk of work — mirroring how "the
//! maintenance work is usually partitioned in small chunks that can be
//! scheduled around workloads" (§5.6).

use duet::Duet;
use sim_btrfs::BtrfsSim;
use sim_core::{SimInstant, SimResult};

/// Whether a task runs with or without the Duet framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskMode {
    /// The unmodified task: fixed processing order, no hints.
    Baseline,
    /// The opportunistic task: registered with Duet, processes cached
    /// data out of order.
    Duet,
}

/// Result of one task step.
#[derive(Debug, Clone, Copy)]
pub struct StepResult {
    /// Virtual time at which the step's I/O completed.
    pub finish: SimInstant,
    /// Whether the task has finished all of its work.
    pub complete: bool,
}

/// Progress and I/O accounting exposed by every task.
#[derive(Debug, Clone, Copy, Default)]
pub struct TaskMetrics {
    /// Total work units (task-specific: blocks, pages, or I/O units).
    pub total_units: u64,
    /// Work units completed so far.
    pub done_units: u64,
    /// Work units completed *without maintenance I/O* thanks to Duet
    /// hints or cache hits — the numerator of the paper's "I/O saved"
    /// metric (Table 4).
    pub saved_units: u64,
    /// Blocks actually read from the device by this task.
    pub blocks_read: u64,
    /// Blocks written to the device by this task.
    pub blocks_written: u64,
}

impl TaskMetrics {
    /// Fraction of work completed.
    pub fn work_fraction(&self) -> f64 {
        if self.total_units == 0 {
            1.0
        } else {
            (self.done_units as f64 / self.total_units as f64).min(1.0)
        }
    }

    /// The paper's "I/O saved" ratio: maintenance I/O avoided relative
    /// to the I/O the baseline task would perform.
    pub fn io_saved_fraction(&self) -> f64 {
        if self.total_units == 0 {
            0.0
        } else {
            self.saved_units as f64 / self.total_units as f64
        }
    }
}

/// Execution context handed to each Btrfs task step.
pub struct BtrfsCtx<'a> {
    /// The filesystem (and its disk + page cache).
    pub fs: &'a mut BtrfsSim,
    /// The Duet framework instance for this device.
    pub duet: &'a mut Duet,
    /// Current virtual time.
    pub now: SimInstant,
}

/// A maintenance task over the Btrfs-model filesystem (scrub, backup,
/// defragmentation).
pub trait BtrfsTask {
    /// Display name, e.g. `"scrub(duet)"`.
    fn name(&self) -> String;

    /// One-time setup: plan the work and register with Duet (Duet
    /// mode). Must be called before the first `step`.
    fn start(&mut self, ctx: BtrfsCtx<'_>) -> SimResult<()>;

    /// Performs one chunk of work.
    fn step(&mut self, ctx: BtrfsCtx<'_>) -> SimResult<StepResult>;

    /// Drains pending Duet notifications and performs any opportunistic
    /// work that needs *no device I/O* (e.g. marking workload-read
    /// blocks scrubbed, copying cached snapshot pages to the backup
    /// stream). The paper's tasks "invoke fetch calls many times per
    /// second" (§4.2) — polling is CPU work and is not gated on device
    /// idleness, so the runner calls this every few milliseconds of
    /// virtual time. Cached pages are only useful while they remain
    /// cached; without frequent polling, opportunities expire with
    /// eviction.
    fn poll(&mut self, ctx: BtrfsCtx<'_>) -> SimResult<()> {
        let _ = ctx;
        Ok(())
    }

    /// Final bookkeeping drain at window end; defaults to one last
    /// [`BtrfsTask::poll`].
    fn finalize(&mut self, ctx: BtrfsCtx<'_>) -> SimResult<()> {
        self.poll(ctx)
    }

    /// Ends the task's Duet session after its work completes — "the
    /// task ends the session when its work is complete by calling
    /// duet_deregister, which releases all Duet session state" (§3.2).
    /// Without this, events keep accumulating descriptors that no one
    /// will ever fetch.
    fn stop(&mut self, ctx: BtrfsCtx<'_>) -> SimResult<()> {
        let _ = ctx;
        Ok(())
    }

    /// Progress and I/O counters.
    fn metrics(&self) -> TaskMetrics;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_fractions() {
        let m = TaskMetrics {
            total_units: 100,
            done_units: 50,
            saved_units: 20,
            blocks_read: 30,
            blocks_written: 0,
        };
        assert_eq!(m.work_fraction(), 0.5);
        assert_eq!(m.io_saved_fraction(), 0.2);
        let empty = TaskMetrics::default();
        assert_eq!(empty.work_fraction(), 1.0, "no work means done");
        assert_eq!(empty.io_saved_fraction(), 0.0);
    }
}
