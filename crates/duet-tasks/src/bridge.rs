//! Wiring between the simulated filesystems and the Duet framework.
//!
//! Provides the
//! event pumps that play the role of the kernel's inline hooks: after
//! every filesystem operation, the simulation drains the page-cache and
//! namespace event queues into the framework, preserving order.

use duet::Duet;
use sim_btrfs::{BtrfsSim, FsEvent};
use sim_f2fs::F2fsSim;

/// Drains page-cache and namespace events from a Btrfs filesystem into
/// the framework, in occurrence order — the simulation's stand-in for
/// the kernel's inline page-cache hooks (§4.1). Call after every
/// filesystem operation (the experiment runner does).
pub fn pump_btrfs(fs: &mut BtrfsSim, duet: &mut Duet) {
    // Take the queue wholesale and hand its buffer back afterwards:
    // the pump runs after every filesystem operation, so a fresh
    // allocation per drain is pure per-op overhead.
    let page_events = fs.cache_mut().take_events();
    for &(meta, ev) in &page_events {
        duet.handle_page_event(meta, ev, fs);
    }
    fs.cache_mut().put_back_events(page_events);
    let fs_events = fs.drain_fs_events();
    for ev in fs_events {
        match ev {
            FsEvent::Created { .. } => {}
            FsEvent::Deleted { ino, .. } => duet.handle_delete(ino),
            FsEvent::Renamed {
                ino,
                old_parent,
                is_dir,
                ..
            } => duet.handle_rename(ino, old_parent, is_dir, fs),
        }
    }
}

/// Drains page-cache events from an F2fs filesystem into the framework.
pub fn pump_f2fs(fs: &mut F2fsSim, duet: &mut Duet) {
    let page_events = fs.cache_mut().take_events();
    for &(meta, ev) in &page_events {
        duet.handle_page_event(meta, ev, fs);
    }
    fs.cache_mut().put_back_events(page_events);
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet::{EventMask, FsIntrospect, ItemFlags, TaskScope};
    use sim_core::{DeviceId, PageIndex, SimInstant, PAGE_SIZE};
    use sim_disk::{Disk, HddModel, IoClass};

    fn btrfs() -> BtrfsSim {
        let disk = Disk::new(Box::new(HddModel::sas_10k(4096)));
        BtrfsSim::new(DeviceId(0), disk, 128)
    }

    #[test]
    fn pump_delivers_read_events_to_block_session() {
        let mut fs = btrfs();
        let ino = fs.populate_file(fs.root(), "f", 4 * PAGE_SIZE).unwrap();
        let mut duet = Duet::with_defaults();
        let sid = duet
            .register(
                TaskScope::Block {
                    device: DeviceId(0),
                },
                EventMask::ADDED,
                &fs,
            )
            .unwrap();
        fs.read(ino, 0, 4 * PAGE_SIZE, IoClass::Normal, SimInstant::EPOCH)
            .unwrap();
        pump_btrfs(&mut fs, &mut duet);
        let items = duet.fetch(sid, 16, &fs).unwrap();
        assert_eq!(items.len(), 4);
        assert!(items.iter().all(|i| i.flags.contains(ItemFlags::ADDED)));
        assert!(items.iter().all(|i| i.id.as_block().is_some()));
    }

    #[test]
    fn pump_delivers_rename_events() {
        let mut fs = btrfs();
        let dir = fs.mkdir(fs.root(), "watched").unwrap();
        let ino = fs.populate_file(fs.root(), "f", 2 * PAGE_SIZE).unwrap();
        fs.read(ino, 0, 2 * PAGE_SIZE, IoClass::Normal, SimInstant::EPOCH)
            .unwrap();
        let mut duet = Duet::with_defaults();
        let sid = duet
            .register(
                TaskScope::File {
                    registered_dir: dir,
                },
                EventMask::EXISTS,
                &fs,
            )
            .unwrap();
        pump_btrfs(&mut fs, &mut duet);
        assert!(duet.fetch(sid, 16, &fs).unwrap().is_empty(), "outside dir");
        fs.rename(ino, dir, "f").unwrap();
        pump_btrfs(&mut fs, &mut duet);
        let items = duet.fetch(sid, 16, &fs).unwrap();
        assert_eq!(items.len(), 2, "cached pages seeded on move-in");
    }

    #[test]
    fn f2fs_fibmap_tracks_flush_migration() {
        let disk = Disk::new(Box::new(HddModel::sas_10k(64)));
        let mut fs = F2fsSim::new(DeviceId(1), disk, 32, 8);
        let ino = fs.populate_file("a", 2 * PAGE_SIZE).unwrap();
        let before = FsIntrospect::fibmap(&fs, ino, PageIndex(0)).unwrap();
        fs.write(ino, 0, PAGE_SIZE, IoClass::Normal, SimInstant::EPOCH)
            .unwrap();
        fs.background_writeback(16, IoClass::Normal, SimInstant::EPOCH)
            .unwrap();
        let after = FsIntrospect::fibmap(&fs, ino, PageIndex(0)).unwrap();
        assert_ne!(before, after, "flush moved the block");
    }
}
