//! File-system scrubbing (§5.1 of the paper).
//!
//! The baseline scrubber "reads all allocated file system blocks on a
//! given device sequentially and verifies them against their checksums"
//! in extent-key (physical) order. The opportunistic scrubber registers
//! for `Added ∨ Dirtied` notifications: a page *added* to the cache was
//! verified by the Btrfs read path, so its block needs no scrubbing; a
//! page *dirtied* carries a new checksum, so a block marked scrubbed
//! before the sequential scan reached it must be re-verified.
//!
//! Work tracking lives in a task-private `verified` bitmap rather than
//! the framework's `done` bitmap: the scrubber must keep receiving
//! `Dirtied` events for blocks it has already marked, and Duet filters
//! all events for done items (§4.1).

use crate::task::{BtrfsCtx, BtrfsTask, StepResult, TaskMetrics, TaskMode};
use duet::{EventMask, ItemFlags, SessionId, TaskScope};
use sim_btrfs::Run;
use sim_core::trace::TraceLayer;
use sim_core::{BlockNr, SimError, SimResult, SparseBitmap, PAGE_SIZE};
use sim_disk::IoClass;

/// Blocks examined per step (1 MiB chunks).
const CHUNK_BLOCKS: u64 = 256;
/// Items drained from Duet per step.
const FETCH_BATCH: usize = 256;

/// The scrubbing task.
pub struct Scrubber {
    mode: TaskMode,
    class: IoClass,
    sid: Option<SessionId>,
    /// Allocated ranges at start, in physical order (the scan plan).
    plan: Vec<Run>,
    range_idx: usize,
    off_in_range: u64,
    /// Blocks verified (by the scan or opportunistically).
    verified: SparseBitmap,
    total: u64,
    own_read: u64,
    own_written: u64,
    opportunistic: u64,
    /// Latent corruptions detected and repaired.
    pub corruptions_fixed: u64,
    /// Test-only defect switch: when set, the scrubber reads blocks
    /// but never repairs them (used to prove the equivalence oracle
    /// catches a broken task).
    skip_repair: bool,
    started: bool,
}

impl Scrubber {
    /// Creates a scrubber. In-kernel maintenance runs at idle I/O
    /// priority in the paper's experiments.
    pub fn new(mode: TaskMode) -> Self {
        Scrubber {
            mode,
            class: IoClass::Idle,
            sid: None,
            plan: Vec::new(),
            range_idx: 0,
            off_in_range: 0,
            verified: SparseBitmap::new(),
            total: 0,
            own_read: 0,
            own_written: 0,
            opportunistic: 0,
            corruptions_fixed: 0,
            skip_repair: false,
            started: false,
        }
    }

    /// Blocks this scrubber has verified, in ascending order — the
    /// oracle's final-state digest.
    pub fn verified_blocks(&self) -> Vec<u64> {
        self.verified.iter().collect()
    }

    /// Sabotage switch for oracle self-tests: silently skip part of the
    /// scan and never repair, without reporting any error.
    #[doc(hidden)]
    pub fn sabotage_skip_repair(&mut self) {
        self.skip_repair = true;
    }

    /// Absolute block at the scan frontier, or `None` when done.
    fn frontier(&self) -> Option<BlockNr> {
        self.plan
            .get(self.range_idx)
            .map(|r| r.start.offset(self.off_in_range))
    }

    /// Whether the sequential scan has already passed this block.
    /// Binary search over the (physically sorted) plan: this runs once
    /// per `Dirtied` notification.
    fn passed(&self, b: BlockNr) -> bool {
        // First run starting strictly after b, minus one = the run that
        // could contain b.
        let i = self.plan.partition_point(|r| r.start.raw() <= b.raw());
        if i == 0 {
            // Before the first run: treated as passed only if the scan
            // is past the beginning (gaps are never scanned).
            return self.range_idx > 0 || self.off_in_range > 0;
        }
        let idx = i - 1;
        let r = &self.plan[idx];
        if b.raw() < r.start.raw() + r.len {
            // Inside run `idx`.
            idx < self.range_idx
                || (idx == self.range_idx && b.raw() - r.start.raw() < self.off_in_range)
        } else {
            // In the gap after run `idx`: passed once the scan moved
            // beyond that run.
            idx < self.range_idx
        }
    }

    /// Whether a block belongs to the scan plan. Blocks allocated after
    /// the scrub started (copy-on-write updates land in fresh space)
    /// are outside the plan: verifying them is not planned work, so
    /// they must not count as savings.
    fn in_plan(&self, b: BlockNr) -> bool {
        let i = self.plan.partition_point(|r| r.start.raw() <= b.raw());
        if i == 0 {
            return false;
        }
        let r = &self.plan[i - 1];
        b.raw() < r.start.raw() + r.len
    }

    fn drain_events(&mut self, ctx: &mut BtrfsCtx<'_>) -> SimResult<()> {
        let Some(sid) = self.sid else {
            return Ok(());
        };
        loop {
            let items = match ctx.duet.fetch(sid, FETCH_BATCH, ctx.fs) {
                Ok(items) => items,
                Err(SimError::InvalidSession(_)) => {
                    // Session vanished: degrade to the plain scan.
                    self.sid = None;
                    return Ok(());
                }
                Err(e) => return Err(e),
            };
            if items.is_empty() {
                return Ok(());
            }
            for item in items {
                let Some(block) = item.id.as_block() else {
                    continue;
                };
                if !self.in_plan(block) {
                    continue;
                }
                if item.flags.contains(ItemFlags::DIRTIED) {
                    // New data, new checksum: re-verify unless the scan
                    // already passed (matching the baseline's single-
                    // pass guarantee, §6.2).
                    if !self.passed(block) && self.verified.clear(block.raw()) {
                        if self.opportunistic > 0 {
                            self.opportunistic -= 1;
                        }
                        if let Some(t) = ctx.fs.trace() {
                            t.event(TraceLayer::Task, "scrub.unverify", ctx.now, || {
                                vec![("block", block.raw().into()), ("src", "hint".into())]
                            });
                        }
                    }
                } else if item.flags.contains(ItemFlags::ADDED) && self.verified.set(block.raw()) {
                    // Verified by the read path: scrubbed for free.
                    self.opportunistic += 1;
                    if let Some(t) = ctx.fs.trace() {
                        t.event(TraceLayer::Task, "scrub.verify", ctx.now, || {
                            vec![("block", block.raw().into()), ("src", "hint".into())]
                        });
                    }
                }
            }
        }
    }
}

impl BtrfsTask for Scrubber {
    fn name(&self) -> String {
        match self.mode {
            TaskMode::Baseline => "scrub(baseline)".into(),
            TaskMode::Duet => "scrub(duet)".into(),
        }
    }

    fn start(&mut self, ctx: BtrfsCtx<'_>) -> SimResult<()> {
        self.plan = ctx.fs.allocated_ranges();
        self.total = self.plan.iter().map(|r| r.len).sum();
        if self.mode == TaskMode::Duet {
            match ctx.duet.register(
                TaskScope::Block {
                    device: ctx.fs.device(),
                },
                EventMask::ADDED | EventMask::DIRTIED,
                ctx.fs,
            ) {
                Ok(sid) => self.sid = Some(sid),
                // All session slots taken: scrub still runs, just
                // without opportunistic savings.
                Err(SimError::TooManySessions) => {}
                Err(e) => return Err(e),
            }
        }
        self.started = true;
        Ok(())
    }

    fn step(&mut self, mut ctx: BtrfsCtx<'_>) -> SimResult<StepResult> {
        assert!(self.started, "step before start");
        self.drain_events(&mut ctx)?;
        // Work-item context span: every record emitted below (disk I/O,
        // checksum checks, effect events) is parented to this step.
        let span = ctx
            .fs
            .trace()
            .map(|t| t.ctx_begin(TraceLayer::Task, "scrub.step", ctx.now, Vec::new));
        let mut finish = ctx.now;
        let mut examined = 0u64;
        // Collect the blocks in this chunk that still need verification.
        let mut to_scrub: Vec<BlockNr> = Vec::new();
        while examined < CHUNK_BLOCKS {
            let Some(b) = self.frontier() else {
                break;
            };
            if !self.verified.test(b.raw()) {
                to_scrub.push(b);
            }
            examined += 1;
            self.off_in_range += 1;
            if self.off_in_range >= self.plan[self.range_idx].len {
                self.range_idx += 1;
                self.off_in_range = 0;
            }
        }
        // Verify (and repair) every block of the chunk first: the
        // scrubber owns the checksum-failure path, whereas an ordinary
        // read of a corrupted block would just fail with EIO.
        if self.skip_repair {
            // Sabotage mode: silently drop a deterministic subset of
            // blocks from the scrub — they are neither repaired nor
            // recorded as verified. Also dodge corrupted blocks so the
            // broken run still "succeeds" (the failure is silent, which
            // is exactly what the oracle must catch).
            to_scrub.retain(|&b| b.raw() % 7 != 0);
            to_scrub.retain(|&b| ctx.fs.blocks().verify_checksum(b).is_ok());
        } else {
            for &b in &to_scrub {
                if ctx.fs.verify_and_repair(b)? {
                    self.corruptions_fixed += 1;
                }
            }
        }
        // Read the needed blocks: through the page cache when a live
        // file backs them (so other tasks can share the I/O, §6.3),
        // raw otherwise (snapshot-only or freed blocks).
        let mut i = 0;
        while i < to_scrub.len() {
            let b = to_scrub[i];
            match ctx.fs.backref_of(b)? {
                Some(br) => {
                    // Extend over physically-and-logically consecutive
                    // backrefs of the same file for one coalesced read.
                    let mut len = 1u64;
                    while i + 1 < to_scrub.len()
                        && to_scrub[i + 1].raw() == b.raw() + len
                        && ctx.fs.backref_of(to_scrub[i + 1])?.is_some_and(|nbr| {
                            nbr.ino == br.ino && nbr.index.raw() == br.index.raw() + len
                        })
                    {
                        len += 1;
                        i += 1;
                    }
                    let stats = ctx.fs.read(
                        br.ino,
                        br.index.raw() * PAGE_SIZE,
                        len * PAGE_SIZE,
                        self.class,
                        ctx.now,
                    )?;
                    self.own_read += stats.blocks_read;
                    self.own_written += stats.blocks_written;
                    finish = finish.max(stats.finish);
                }
                None => {
                    let stats = ctx.fs.read_raw(b, 1, self.class, ctx.now)?;
                    self.own_read += stats.blocks_read;
                    finish = finish.max(stats.finish);
                }
            }
            i += 1;
        }
        // Mark the chunk verified.
        for b in to_scrub {
            self.verified.set(b.raw());
            if let Some(t) = ctx.fs.trace() {
                t.event(TraceLayer::Task, "scrub.verify", ctx.now, || {
                    vec![("block", b.raw().into()), ("src", "scan".into())]
                });
            }
        }
        if let (Some(t), Some(id)) = (ctx.fs.trace(), span) {
            t.ctx_end(id, finish);
        }
        let complete = self.frontier().is_none();
        Ok(StepResult { finish, complete })
    }

    fn poll(&mut self, mut ctx: BtrfsCtx<'_>) -> SimResult<()> {
        self.drain_events(&mut ctx)
    }

    fn stop(&mut self, ctx: BtrfsCtx<'_>) -> SimResult<()> {
        self.poll(BtrfsCtx {
            fs: ctx.fs,
            duet: ctx.duet,
            now: ctx.now,
        })?;
        if let Some(sid) = self.sid.take() {
            ctx.duet.deregister(sid)?;
        }
        Ok(())
    }

    fn metrics(&self) -> TaskMetrics {
        TaskMetrics {
            total_units: self.total,
            done_units: self.verified.count().min(self.total),
            saved_units: self.opportunistic,
            blocks_read: self.own_read,
            blocks_written: self.own_written,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bridge::pump_btrfs;
    use duet::Duet;
    use sim_btrfs::BtrfsSim;
    use sim_core::{DeviceId, SimInstant};
    use sim_disk::{Disk, HddModel};

    const T0: SimInstant = SimInstant::EPOCH;

    fn setup(files: u64, pages_each: u64) -> (BtrfsSim, Duet) {
        let disk = Disk::new(Box::new(HddModel::sas_10k(1 << 16)));
        let mut fs = BtrfsSim::new(DeviceId(0), disk, 256);
        for i in 0..files {
            fs.populate_file(fs.root(), &format!("f{i}"), pages_each * PAGE_SIZE)
                .unwrap();
        }
        (fs, Duet::with_defaults())
    }

    fn run_to_completion(task: &mut Scrubber, fs: &mut BtrfsSim, duet: &mut Duet) -> u64 {
        task.start(BtrfsCtx { fs, duet, now: T0 }).unwrap();
        pump_btrfs(fs, duet);
        let mut steps = 0;
        loop {
            let r = task.step(BtrfsCtx { fs, duet, now: T0 }).unwrap();
            pump_btrfs(fs, duet);
            steps += 1;
            if r.complete {
                return steps;
            }
            assert!(steps < 10_000, "scrubber did not terminate");
        }
    }

    #[test]
    fn baseline_scrubs_every_block_once() {
        let (mut fs, mut duet) = setup(4, 64);
        let mut task = Scrubber::new(TaskMode::Baseline);
        run_to_completion(&mut task, &mut fs, &mut duet);
        let m = task.metrics();
        assert_eq!(m.total_units, 256);
        assert_eq!(m.done_units, 256);
        assert_eq!(m.blocks_read, 256, "every block read exactly once");
        assert_eq!(m.saved_units, 0);
        assert_eq!(m.io_saved_fraction(), 0.0);
    }

    #[test]
    fn duet_scrubber_skips_workload_read_blocks() {
        let (mut fs, mut duet) = setup(4, 64);
        let files = fs.inodes().files_by_inode();
        let mut task = Scrubber::new(TaskMode::Duet);
        task.start(BtrfsCtx {
            fs: &mut fs,
            duet: &mut duet,
            now: T0,
        })
        .unwrap();
        // The "workload" reads half the files before the scan begins.
        for &f in &files[..2] {
            fs.read(f, 0, 64 * PAGE_SIZE, IoClass::Normal, T0).unwrap();
        }
        pump_btrfs(&mut fs, &mut duet);
        loop {
            let r = task
                .step(BtrfsCtx {
                    fs: &mut fs,
                    duet: &mut duet,
                    now: T0,
                })
                .unwrap();
            pump_btrfs(&mut fs, &mut duet);
            if r.complete {
                break;
            }
        }
        let m = task.metrics();
        assert_eq!(m.done_units, 256);
        assert_eq!(m.saved_units, 128, "two files scrubbed for free");
        assert_eq!(m.blocks_read, 128);
        assert!((m.io_saved_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn dirtied_blocks_are_reverified_if_not_yet_passed() {
        let (mut fs, mut duet) = setup(2, 64);
        let files = fs.inodes().files_by_inode();
        let mut task = Scrubber::new(TaskMode::Duet);
        task.start(BtrfsCtx {
            fs: &mut fs,
            duet: &mut duet,
            now: T0,
        })
        .unwrap();
        // Workload reads the *second* file (ahead of the scan), marking
        // it scrubbed...
        fs.read(files[1], 0, 64 * PAGE_SIZE, IoClass::Normal, T0)
            .unwrap();
        pump_btrfs(&mut fs, &mut duet);
        // ...then overwrites part of it, invalidating those checksums.
        fs.write(files[1], 0, 16 * PAGE_SIZE, IoClass::Normal, T0)
            .unwrap();
        pump_btrfs(&mut fs, &mut duet);
        loop {
            let r = task
                .step(BtrfsCtx {
                    fs: &mut fs,
                    duet: &mut duet,
                    now: T0,
                })
                .unwrap();
            pump_btrfs(&mut fs, &mut duet);
            if r.complete {
                break;
            }
        }
        let m = task.metrics();
        // First file (64) read by scan. Second file: 48 blocks saved;
        // 16 were rewritten. COW moved those to *new* blocks outside
        // the original plan, so the old 16 in-plan blocks were freed —
        // the scan re-reads nothing for them only if unallocated; the
        // plan-covered read volume must be at least the first file.
        assert!(m.blocks_read >= 64);
        assert!(m.saved_units >= 48, "saved {}", m.saved_units);
    }

    #[test]
    fn scrubber_detects_and_repairs_corruption() {
        let (mut fs, mut duet) = setup(1, 32);
        fs.inject_corruption(BlockNr(5)).unwrap();
        fs.inject_corruption(BlockNr(17)).unwrap();
        let mut task = Scrubber::new(TaskMode::Baseline);
        run_to_completion(&mut task, &mut fs, &mut duet);
        assert_eq!(task.corruptions_fixed, 2);
        assert_eq!(fs.blocks().corrupted_count(), 0);
    }

    #[test]
    fn scrub_reads_are_sequential_and_coalesced() {
        let (mut fs, mut duet) = setup(1, 256);
        let mut task = Scrubber::new(TaskMode::Baseline);
        run_to_completion(&mut task, &mut fs, &mut duet);
        // One populate run = physically contiguous: each 256-block step
        // should issue a single coalesced read.
        let reqs = fs.disk().metrics().idle.read_ops;
        assert!(reqs <= 2, "expected coalesced reads, got {reqs} requests");
    }
}
