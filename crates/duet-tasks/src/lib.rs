//! The five maintenance tasks of the paper, adapted to Duet.
//!
//! Each task exists in two modes (Table 3):
//!
//! | Task | Type | Mask | Duet modification |
//! |---|---|---|---|
//! | [`Scrubber`] | block | `ADDED ∨ DIRTIED` | recently read blocks are not scrubbed |
//! | [`Backup`] | block | `EXISTS` | in-memory snapshot-shared blocks backed up out of order |
//! | [`Defrag`] | file | `EXISTS` | files with most resident pages prioritized |
//! | [`GarbageCollector`] | block | `EXISTS ∨ FLUSHED` | cleaning cost discounts cached blocks |
//! | [`Rsync`] | file | `EXISTS` | files with most resident pages transferred first |
//!
//! Tasks are resumable state machines ([`task::BtrfsTask::step`] /
//! [`Rsync::step`] / [`GarbageCollector::step`]): the experiment runner
//! invokes them in the device's idle gaps (or continuously, for rsync,
//! which runs at normal priority). [`bridge`] provides the
//! [`duet::FsIntrospect`] implementations and the event pumps standing
//! in for the kernel's inline page-cache hooks.

pub mod backup;
pub mod bridge;
pub mod defrag;
pub mod gc;
pub mod rsync;
pub mod scrub;
pub mod task;

pub use backup::Backup;
pub use bridge::{pump_btrfs, pump_f2fs};
pub use defrag::Defrag;
pub use gc::{GarbageCollector, GcCtx};
pub use rsync::{Rsync, RsyncCtx};
pub use scrub::Scrubber;
pub use task::{BtrfsCtx, BtrfsTask, StepResult, TaskMetrics, TaskMode};
