//! Snapshot-based backup (§5.2 of the paper).
//!
//! The baseline tool takes a read-only snapshot and backs files up in
//! inode-number order, reading each file fully — which makes its I/O
//! pattern 64 KiB *random* reads across the device (§6.2). The
//! opportunistic tool registers for `Exists` notifications: when a page
//! of snapshot-shared data is in memory, it is copied to the backup
//! stream out of order — after locking the page, checking it is not
//! dirty, and confirming via back-references that it still belongs to
//! the snapshot.

use crate::task::{BtrfsCtx, BtrfsTask, StepResult, TaskMetrics, TaskMode};
use duet::{EventMask, ItemFlags, ItemId, SessionId, TaskScope};
use sim_btrfs::SnapshotId;
use sim_cache::PageKey;
use sim_core::trace::TraceLayer;
use sim_core::{InodeNr, SimError, SimResult, SparseBitmap, PAGE_SIZE};
use sim_disk::IoClass;

/// Pages processed per dispatch. The paper's backup "issues 64KB random
/// reads"; a step covers four of them, so that per idle-gap dispatch
/// the backup moves ~1/4 as much data as the scrubber's sequential
/// 1 MiB chunk — random I/O then makes it roughly half as fast overall,
/// matching §6.2 ("the backup requires almost twice the amount of time
/// needed for scrubbing"). Was 256 (a full 1 MiB per dispatch), which
/// let the backup finish only ~1.2× behind the scrubber and pushed the
/// Fig. 3 plateau too early; 64 restores the intended pacing.
const CHUNK_PAGES: u64 = 64;
const FETCH_BATCH: usize = 256;

/// The snapshot-backup task.
pub struct Backup {
    mode: TaskMode,
    class: IoClass,
    sid: Option<SessionId>,
    snap: Option<SnapshotId>,
    /// Snapshot files in inode order (the plan).
    files: Vec<InodeNr>,
    file_idx: usize,
    page_in_file: u64,
    /// Blocks already backed up (by either path).
    backed: SparseBitmap,
    total_pages: u64,
    backed_up: u64,
    opportunistic: u64,
    own_read: u64,
    own_written: u64,
    /// Bytes shipped to backup storage.
    pub sent_bytes: u64,
    /// Test-only defect switch: silently drop a deterministic subset of
    /// blocks from the backup stream (oracle self-test).
    skip_ship: bool,
    started: bool,
}

impl Backup {
    /// Creates a backup task (idle I/O priority, like the paper's
    /// in-kernel tasks).
    pub fn new(mode: TaskMode) -> Self {
        Backup {
            mode,
            class: IoClass::Idle,
            sid: None,
            snap: None,
            files: Vec::new(),
            file_idx: 0,
            page_in_file: 0,
            backed: SparseBitmap::new(),
            total_pages: 0,
            backed_up: 0,
            opportunistic: 0,
            own_read: 0,
            own_written: 0,
            sent_bytes: 0,
            skip_ship: false,
            started: false,
        }
    }

    /// Sabotage switch for oracle self-tests: every seventh block is
    /// silently omitted from the backup stream — no error, the run
    /// still reports completion.
    #[doc(hidden)]
    pub fn sabotage_skip_ship(&mut self) {
        self.skip_ship = true;
    }

    /// The snapshot this backup is reading from.
    pub fn snapshot(&self) -> Option<SnapshotId> {
        self.snap
    }

    /// Blocks shipped to the backup stream, in ascending order — the
    /// oracle's final-state digest.
    pub fn backed_blocks(&self) -> Vec<u64> {
        self.backed.iter().collect()
    }

    fn ship(&mut self, pages: u64) {
        self.backed_up += pages;
        self.sent_bytes += pages * PAGE_SIZE;
    }

    /// Opportunistic path: copy cached, snapshot-shared pages.
    fn drain_events(&mut self, ctx: &mut BtrfsCtx<'_>) -> SimResult<()> {
        let (Some(sid), Some(snap)) = (self.sid, self.snap) else {
            return Ok(());
        };
        loop {
            let items = match ctx.duet.fetch(sid, FETCH_BATCH, ctx.fs) {
                Ok(items) => items,
                Err(SimError::InvalidSession(_)) => {
                    // Session vanished: degrade to the plan order.
                    self.sid = None;
                    return Ok(());
                }
                Err(e) => return Err(e),
            };
            if items.is_empty() {
                return Ok(());
            }
            for item in items {
                if !item.flags.contains(ItemFlags::EXISTS) {
                    continue;
                }
                let Some(block) = item.id.as_block() else {
                    continue;
                };
                if self.backed.test(block.raw()) {
                    continue;
                }
                // Back-reference check: does the cached page still carry
                // the block the snapshot expects?
                let Some(br) = ctx.fs.backref_of(block)? else {
                    continue;
                };
                if !ctx.fs.shared_with_snapshot(snap, br.ino, br.index)? {
                    continue;
                }
                // "Lock the page, check that it is not dirty" (§5.2):
                // a dirty page holds post-snapshot data.
                let key = PageKey::new(br.ino, br.index);
                match ctx.fs.cache().peek(key) {
                    Some(meta) if !meta.dirty => {}
                    _ => continue,
                }
                if self.skip_ship && block.raw() % 7 == 0 {
                    continue;
                }
                // Copy from memory: zero maintenance reads.
                self.backed.set(block.raw());
                self.ship(1);
                self.opportunistic += 1;
                if let Some(t) = ctx.fs.trace() {
                    t.event(TraceLayer::Task, "backup.ship", ctx.now, || {
                        vec![("block", block.raw().into()), ("src", "hint".into())]
                    });
                }
                ctx.duet.set_done(sid, ItemId::Block(block))?;
            }
        }
    }
}

impl BtrfsTask for Backup {
    fn name(&self) -> String {
        match self.mode {
            TaskMode::Baseline => "backup(baseline)".into(),
            TaskMode::Duet => "backup(duet)".into(),
        }
    }

    fn start(&mut self, ctx: BtrfsCtx<'_>) -> SimResult<()> {
        let snap = ctx.fs.create_snapshot()?;
        self.snap = Some(snap);
        {
            let s = ctx.fs.snapshot(snap)?;
            self.files = s.files.keys().copied().collect();
            self.total_pages = s.total_pages();
        }
        if self.mode == TaskMode::Duet {
            match ctx.duet.register(
                TaskScope::Block {
                    device: ctx.fs.device(),
                },
                EventMask::EXISTS,
                ctx.fs,
            ) {
                Ok(sid) => self.sid = Some(sid),
                // All session slots taken: back up in plan order only.
                Err(SimError::TooManySessions) => {}
                Err(e) => return Err(e),
            }
        }
        self.started = true;
        Ok(())
    }

    fn step(&mut self, mut ctx: BtrfsCtx<'_>) -> SimResult<StepResult> {
        assert!(self.started, "step before start");
        self.drain_events(&mut ctx)?;
        let Some(snap) = self.snap else {
            return Err(SimError::InvalidArgument(
                "backup stepped before start".into(),
            ));
        };
        let span = ctx
            .fs
            .trace()
            .map(|t| t.ctx_begin(TraceLayer::Task, "backup.step", ctx.now, Vec::new));
        let mut finish = ctx.now;
        let mut processed = 0u64;
        while processed < CHUNK_PAGES {
            let Some(&ino) = self.files.get(self.file_idx) else {
                break;
            };
            let (file_pages, snap_block) = {
                let s = ctx.fs.snapshot(snap)?;
                let f = &s.files[&ino];
                (
                    f.size_pages(),
                    f.extents.block_of(sim_core::PageIndex(self.page_in_file)),
                )
            };
            if self.page_in_file >= file_pages {
                self.file_idx += 1;
                self.page_in_file = 0;
                continue;
            }
            let idx = sim_core::PageIndex(self.page_in_file);
            self.page_in_file += 1;
            let Some(sb) = snap_block else {
                continue; // Hole in the snapshot file.
            };
            if self.backed.test(sb.raw()) {
                processed += 1;
                continue; // Already backed up opportunistically.
            }
            if self.skip_ship && sb.raw() % 7 == 0 {
                // Sabotage mode: the block is silently dropped from the
                // stream but still counted as handled.
                processed += 1;
                continue;
            }
            // Read the data: through the live page cache while the
            // block is still shared with the live file; raw otherwise
            // (the live copy diverged after the snapshot).
            let shared = ctx.fs.shared_with_snapshot(snap, ino, idx)?;
            let stats = if shared {
                ctx.fs
                    .read(ino, idx.byte_offset(), PAGE_SIZE, self.class, ctx.now)?
            } else {
                ctx.fs.read_raw(sb, 1, self.class, ctx.now)?
            };
            self.own_read += stats.blocks_read;
            self.own_written += stats.blocks_written;
            finish = finish.max(stats.finish);
            self.backed.set(sb.raw());
            self.ship(1);
            if let Some(t) = ctx.fs.trace() {
                t.event(TraceLayer::Task, "backup.ship", ctx.now, || {
                    vec![("block", sb.raw().into()), ("src", "scan".into())]
                });
            }
            if let Some(sid) = self.sid {
                ctx.duet.set_done(sid, ItemId::Block(sb))?;
            }
            processed += 1;
        }
        if let (Some(t), Some(id)) = (ctx.fs.trace(), span) {
            t.ctx_end(id, finish);
        }
        let complete = self.file_idx >= self.files.len();
        Ok(StepResult { finish, complete })
    }

    fn poll(&mut self, mut ctx: BtrfsCtx<'_>) -> SimResult<()> {
        // The opportunistic path performs no device I/O: cached shared
        // pages are copied straight to the backup stream.
        self.drain_events(&mut ctx)
    }

    fn stop(&mut self, ctx: BtrfsCtx<'_>) -> SimResult<()> {
        self.poll(BtrfsCtx {
            fs: ctx.fs,
            duet: ctx.duet,
            now: ctx.now,
        })?;
        if let Some(sid) = self.sid.take() {
            ctx.duet.deregister(sid)?;
        }
        Ok(())
    }

    fn metrics(&self) -> TaskMetrics {
        TaskMetrics {
            total_units: self.total_pages,
            done_units: self.backed_up,
            saved_units: self.backed_up.saturating_sub(self.own_read),
            blocks_read: self.own_read,
            blocks_written: self.own_written,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bridge::pump_btrfs;
    use duet::Duet;
    use sim_btrfs::BtrfsSim;
    use sim_core::{DeviceId, SimInstant, PAGE_SIZE};
    use sim_disk::{Disk, HddModel};

    const T0: SimInstant = SimInstant::EPOCH;

    fn setup(files: u64, pages_each: u64) -> (BtrfsSim, Duet) {
        let disk = Disk::new(Box::new(HddModel::sas_10k(1 << 16)));
        let mut fs = BtrfsSim::new(DeviceId(0), disk, 512);
        for i in 0..files {
            fs.populate_file(fs.root(), &format!("f{i}"), pages_each * PAGE_SIZE)
                .unwrap();
        }
        (fs, Duet::with_defaults())
    }

    fn drive(task: &mut Backup, fs: &mut BtrfsSim, duet: &mut Duet) {
        loop {
            let r = task.step(BtrfsCtx { fs, duet, now: T0 }).unwrap();
            pump_btrfs(fs, duet);
            if r.complete {
                break;
            }
        }
    }

    #[test]
    fn baseline_reads_everything() {
        let (mut fs, mut duet) = setup(4, 32);
        let mut task = Backup::new(TaskMode::Baseline);
        task.start(BtrfsCtx {
            fs: &mut fs,
            duet: &mut duet,
            now: T0,
        })
        .unwrap();
        drive(&mut task, &mut fs, &mut duet);
        let m = task.metrics();
        assert_eq!(m.total_units, 128);
        assert_eq!(m.done_units, 128);
        assert_eq!(m.blocks_read, 128);
        assert_eq!(task.sent_bytes, 128 * PAGE_SIZE);
        assert_eq!(m.saved_units, 0);
    }

    #[test]
    fn duet_backup_copies_cached_shared_pages() {
        let (mut fs, mut duet) = setup(4, 32);
        let files = fs.inodes().files_by_inode();
        let mut task = Backup::new(TaskMode::Duet);
        task.start(BtrfsCtx {
            fs: &mut fs,
            duet: &mut duet,
            now: T0,
        })
        .unwrap();
        // Workload reads file 2 fully: still snapshot-shared.
        fs.read(files[2], 0, 32 * PAGE_SIZE, IoClass::Normal, T0)
            .unwrap();
        pump_btrfs(&mut fs, &mut duet);
        drive(&mut task, &mut fs, &mut duet);
        let m = task.metrics();
        assert_eq!(m.done_units, 128, "all pages backed up");
        assert!(m.saved_units >= 32, "saved {}", m.saved_units);
        assert!(m.blocks_read <= 96);
    }

    #[test]
    fn overwritten_blocks_not_taken_from_cache() {
        let (mut fs, mut duet) = setup(2, 16);
        let files = fs.inodes().files_by_inode();
        let mut task = Backup::new(TaskMode::Duet);
        task.start(BtrfsCtx {
            fs: &mut fs,
            duet: &mut duet,
            now: T0,
        })
        .unwrap();
        // Overwrite file 1 after the snapshot: its cached (new) pages
        // must NOT satisfy the backup — sharing is broken (§6.2).
        fs.write(files[1], 0, 16 * PAGE_SIZE, IoClass::Normal, T0)
            .unwrap();
        pump_btrfs(&mut fs, &mut duet);
        drive(&mut task, &mut fs, &mut duet);
        let m = task.metrics();
        assert_eq!(m.done_units, 32);
        // File 1's snapshot blocks had to be read raw from disk.
        assert!(m.blocks_read >= 16, "read {}", m.blocks_read);
        assert_eq!(m.saved_units, m.done_units - m.blocks_read);
        // The backup is of the *snapshot* content: blocks still exist.
        let snap = task.snapshot().unwrap();
        for p in 0..16 {
            assert!(fs
                .snapshot_block(snap, files[1], sim_core::PageIndex(p))
                .unwrap()
                .is_some());
        }
    }

    #[test]
    fn dirty_pages_are_skipped_by_opportunistic_path() {
        let (mut fs, mut duet) = setup(1, 8);
        let files = fs.inodes().files_by_inode();
        let mut task = Backup::new(TaskMode::Duet);
        task.start(BtrfsCtx {
            fs: &mut fs,
            duet: &mut duet,
            now: T0,
        })
        .unwrap();
        // Dirty pages in cache (write after snapshot): sharing broken
        // anyway, but the dirty-check is the first line of defence.
        fs.write(files[0], 0, 8 * PAGE_SIZE, IoClass::Normal, T0)
            .unwrap();
        pump_btrfs(&mut fs, &mut duet);
        // Drain events: nothing should be shipped opportunistically.
        let mut ctx = BtrfsCtx {
            fs: &mut fs,
            duet: &mut duet,
            now: T0,
        };
        task.drain_events(&mut ctx).unwrap();
        assert_eq!(task.opportunistic, 0);
        drive(&mut task, &mut fs, &mut duet);
        assert_eq!(task.metrics().done_units, 8);
    }

    #[test]
    fn two_backups_would_share_via_cache() {
        // A second Duet backup benefits from the first one's reads
        // (both read through the page cache) — the §6.3 synergy.
        let (mut fs, mut duet) = setup(2, 32);
        let mut first = Backup::new(TaskMode::Duet);
        first
            .start(BtrfsCtx {
                fs: &mut fs,
                duet: &mut duet,
                now: T0,
            })
            .unwrap();
        let mut second = Backup::new(TaskMode::Duet);
        second
            .start(BtrfsCtx {
                fs: &mut fs,
                duet: &mut duet,
                now: T0,
            })
            .unwrap();
        // Interleave.
        loop {
            let a = first
                .step(BtrfsCtx {
                    fs: &mut fs,
                    duet: &mut duet,
                    now: T0,
                })
                .unwrap();
            pump_btrfs(&mut fs, &mut duet);
            let b = second
                .step(BtrfsCtx {
                    fs: &mut fs,
                    duet: &mut duet,
                    now: T0,
                })
                .unwrap();
            pump_btrfs(&mut fs, &mut duet);
            if a.complete && b.complete {
                break;
            }
        }
        let m1 = first.metrics();
        let m2 = second.metrics();
        assert_eq!(m1.done_units, 64);
        assert_eq!(m2.done_units, 64);
        let total_reads = m1.blocks_read + m2.blocks_read;
        assert!(
            total_reads <= 64 + 8,
            "one pass serves both: {total_reads} reads for 128 page-backups"
        );
        assert!(m1.saved_units + m2.saved_units >= 56);
    }
}
