//! The rsync application (§5.5 of the paper).
//!
//! Rsync synchronizes a source directory to a destination. With an
//! empty destination (the paper's Figure 4 setup) every file is read at
//! the source and written at the destination, so "the I/O operations
//! required per file are twice the number of data blocks of the file".
//! The baseline traverses the hierarchy depth-first; the opportunistic
//! version registers for `Exists` notifications and prioritizes "files
//! with the highest number of pages in memory" (Algorithm 1), using
//! `duet_get_path` as the truth check before committing to a file, and
//! sending each file's metadata exactly once.
//!
//! Unlike the in-kernel tasks, rsync runs at *normal* I/O priority
//! (§6.2), competing with the foreground workload; the paper therefore
//! reports its benefit as runtime speedup rather than maximum
//! utilization.

use crate::task::{StepResult, TaskMetrics, TaskMode};
use duet::{Duet, EventMask, ItemId, Priority, ResidencyTracker, SessionId, TaskScope};
use sim_btrfs::BtrfsSim;
use sim_core::trace::TraceLayer;
use sim_core::{InodeNr, SimError, SimInstant, SimResult, PAGE_SIZE};
use sim_disk::IoClass;
use std::collections::{BTreeMap, BTreeSet};

/// Pages per step: rsync "processes files in 32KB chunks" (§5.6).
const CHUNK_PAGES: u64 = 8;
const FETCH_BATCH: usize = 256;

/// Execution context: source and destination filesystems. Duet watches
/// the source.
pub struct RsyncCtx<'a> {
    /// Source filesystem (the workload also runs here).
    pub src: &'a mut BtrfsSim,
    /// Destination filesystem (initially empty).
    pub dst: &'a mut BtrfsSim,
    /// The Duet framework instance on the source device.
    pub duet: &'a mut Duet,
    /// Current virtual time.
    pub now: SimInstant,
}

struct ActiveFile {
    ino: InodeNr,
    dst_ino: InodeNr,
    next_page: u64,
    total_pages: u64,
    /// How this file was picked: "hint" (priority queue) or "scan"
    /// (depth-first plan order).
    src: &'static str,
}

/// The rsync transfer task.
pub struct Rsync {
    mode: TaskMode,
    class: IoClass,
    sid: Option<SessionId>,
    src_dir: InodeNr,
    /// Files in depth-first traversal order (the sender's order).
    plan: Vec<InodeNr>,
    plan_set: BTreeSet<InodeNr>,
    /// Size (pages) each file was planned at; reconciled at activation
    /// because files may grow or shrink before the sender reaches them.
    planned_pages: BTreeMap<InodeNr, u64>,
    plan_idx: usize,
    active: Option<ActiveFile>,
    /// Residency tracking + priority queue (Algorithm 1; priority is
    /// the number of resident pages, Table 3).
    tracker: ResidencyTracker,
    /// Files whose metadata has been sent (exactly once each, §5.5).
    meta_sent: BTreeSet<InodeNr>,
    total_pages: u64,
    pages_done: u64,
    src_read: u64,
    dst_written: u64,
    read_saved: u64,
    /// Test-only defect switch: silently skip sending a deterministic
    /// subset of files (oracle self-test).
    skip_some: bool,
    started: bool,
}

impl Rsync {
    /// Creates an rsync task copying the subtree at `src_dir`.
    pub fn new(mode: TaskMode, src_dir: InodeNr) -> Self {
        Rsync {
            mode,
            class: IoClass::Normal,
            sid: None,
            src_dir,
            plan: Vec::new(),
            plan_set: BTreeSet::new(),
            planned_pages: BTreeMap::new(),
            plan_idx: 0,
            active: None,
            tracker: ResidencyTracker::new(Priority::ResidentPages),
            meta_sent: BTreeSet::new(),
            total_pages: 0,
            pages_done: 0,
            src_read: 0,
            dst_written: 0,
            read_saved: 0,
            skip_some: false,
            started: false,
        }
    }

    /// Sabotage switch for oracle self-tests: even-numbered inodes are
    /// silently marked transferred without being copied — the run still
    /// completes without any error.
    #[doc(hidden)]
    pub fn sabotage_skip_files(&mut self) {
        self.skip_some = true;
    }

    /// Display name.
    pub fn name(&self) -> String {
        match self.mode {
            TaskMode::Baseline => "rsync(baseline)".into(),
            TaskMode::Duet => "rsync(duet)".into(),
        }
    }

    /// One-time setup: traverse the source, replicate the directory
    /// structure (the sender's metadata pass) and register with Duet.
    pub fn start(&mut self, ctx: RsyncCtx<'_>) -> SimResult<()> {
        let walk = ctx.src.inodes().walk_depth_first(self.src_dir)?;
        for (ino, is_dir) in walk {
            if is_dir {
                // Replicate the directory eagerly (metadata only).
                let rel = self.rel_path(ctx.src, ino)?;
                ensure_dir(ctx.dst, &rel)?;
            } else {
                let pages = ctx.src.inodes().get(ino)?.size_pages();
                self.plan.push(ino);
                self.plan_set.insert(ino);
                self.planned_pages.insert(ino, pages);
                self.total_pages += pages;
            }
        }
        if self.mode == TaskMode::Duet {
            match ctx.duet.register(
                TaskScope::File {
                    registered_dir: self.src_dir,
                },
                EventMask::EXISTS,
                ctx.src,
            ) {
                Ok(sid) => self.sid = Some(sid),
                // All session slots taken: copy in plan order only.
                Err(SimError::TooManySessions) => {}
                Err(e) => return Err(e),
            }
        }
        self.started = true;
        Ok(())
    }

    fn rel_path(&self, src: &BtrfsSim, ino: InodeNr) -> SimResult<String> {
        let full = src.path_of(ino)?;
        let base = src.path_of(self.src_dir)?;
        Ok(if base == "/" {
            full.trim_start_matches('/').to_string()
        } else {
            full.strip_prefix(&base)
                .map(|s| s.trim_start_matches('/').to_string())
                .unwrap_or(full)
        })
    }

    fn update_queue(&mut self, ctx: &mut RsyncCtx<'_>) -> SimResult<()> {
        let Some(sid) = self.sid else {
            return Ok(());
        };
        loop {
            let items = match ctx.duet.fetch(sid, FETCH_BATCH, ctx.src) {
                Ok(items) => items,
                Err(SimError::InvalidSession(_)) => {
                    // The session vanished out from under us (external
                    // deregistration): degrade to the baseline
                    // traversal rather than abandoning the copy.
                    self.sid = None;
                    return Ok(());
                }
                Err(e) => return Err(e),
            };
            if items.is_empty() {
                return Ok(());
            }
            let plan = &self.plan_set;
            self.tracker.update(&items, |ino| plan.contains(&ino));
        }
    }

    fn is_done(&self, ctx: &RsyncCtx<'_>, ino: InodeNr) -> bool {
        match self.sid {
            Some(sid) => ctx
                .duet
                .check_done(sid, ItemId::Inode(ino))
                .unwrap_or(false),
            // Baseline mode tracks completion via `transferred`.
            None => false,
        }
    }

    /// Opens the destination file for a source file, sending metadata
    /// once.
    fn activate(
        &mut self,
        ctx: &mut RsyncCtx<'_>,
        ino: InodeNr,
        src: &'static str,
    ) -> SimResult<()> {
        let rel = self.rel_path(ctx.src, ino)?;
        let total_pages = ctx.src.inodes().get(ino)?.size_pages();
        // Reconcile the plan with the file's current size.
        if let Some(planned) = self.planned_pages.insert(ino, total_pages) {
            self.total_pages = self.total_pages + total_pages - planned;
        }
        let dst_ino = ensure_file(ctx.dst, &rel)?;
        self.meta_sent.insert(ino);
        self.active = Some(ActiveFile {
            ino,
            dst_ino,
            next_page: 0,
            total_pages,
            src,
        });
        Ok(())
    }

    /// Picks the next file: opportunistic queue first, then plan order.
    fn pick_next(&mut self, ctx: &mut RsyncCtx<'_>) -> SimResult<bool> {
        // Opportunistic choice, validated through duet_get_path.
        let mut backed_out: Vec<InodeNr> = Vec::new();
        let mut picked = None;
        let mut failure = None;
        while let Some(ino) = self.tracker.pop_best() {
            if self.is_done(ctx, ino) || self.transferred(ino) || !ctx.src.inodes().exists(ino) {
                continue;
            }
            if self.skip_some && ino.raw().is_multiple_of(2) {
                // Sabotage mode: pretend the file was sent.
                self.meta_sent.insert(ino);
                continue;
            }
            if let Some(sid) = self.sid {
                match ctx.duet.get_path(sid, ino, ctx.src) {
                    Ok(_) => {}
                    Err(SimError::PathNotAvailable(_)) => {
                        // The hint went stale — or the failure is
                        // transient. Back out (§3.2) and re-enqueue:
                        // a later pick retries it, and the file stays
                        // covered by normal order either way.
                        backed_out.push(ino);
                        continue;
                    }
                    Err(SimError::InvalidSession(_)) => {
                        // Session gone: degrade to the baseline
                        // traversal. The hint itself is still good.
                        self.sid = None;
                    }
                    Err(e) => {
                        backed_out.push(ino);
                        failure = Some(e);
                        break;
                    }
                }
            }
            picked = Some(ino);
            break;
        }
        // Backed-out hints return to the queue at their recorded
        // priority so a later pick can retry them.
        for ino in backed_out {
            self.tracker.requeue(ino);
        }
        if let Some(e) = failure {
            return Err(e);
        }
        if let Some(ino) = picked {
            self.activate(ctx, ino, "hint")?;
            return Ok(true);
        }
        // Normal depth-first order. Files deleted since the traversal
        // are skipped (rsync would notice the vanished file and move
        // on), and their planned work is retired.
        while let Some(&ino) = self.plan.get(self.plan_idx) {
            self.plan_idx += 1;
            if !ctx.src.inodes().exists(ino) {
                if let Some(p) = self.planned_pages.remove(&ino) {
                    self.total_pages -= p;
                }
                continue;
            }
            if self.is_done(ctx, ino) || self.transferred(ino) {
                continue;
            }
            if self.skip_some && ino.raw().is_multiple_of(2) {
                // Sabotage mode: pretend the file was sent.
                self.meta_sent.insert(ino);
                continue;
            }
            self.activate(ctx, ino, "scan")?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Whether a file was fully transferred (baseline-mode bookkeeping;
    /// Duet mode uses the framework's done bitmap).
    fn transferred(&self, ino: InodeNr) -> bool {
        self.meta_sent.contains(&ino) && self.active.as_ref().map(|a| a.ino != ino).unwrap_or(true)
    }

    /// Transfers one chunk of the active file.
    pub fn step(&mut self, mut ctx: RsyncCtx<'_>) -> SimResult<StepResult> {
        assert!(self.started, "step before start");
        self.update_queue(&mut ctx)?;
        if self.active.is_none() && !self.pick_next(&mut ctx)? {
            return Ok(StepResult {
                finish: ctx.now,
                complete: true,
            });
        }
        let mut finish = ctx.now;
        let (ino, dst_ino, page, pages_now, file_done, item_src) = {
            let Some(a) = self.active.as_mut() else {
                // pick_next found nothing activatable after all.
                return Ok(StepResult {
                    finish: ctx.now,
                    complete: true,
                });
            };
            let pages_now = CHUNK_PAGES.min(a.total_pages - a.next_page);
            let page = a.next_page;
            a.next_page += pages_now;
            (
                a.ino,
                a.dst_ino,
                page,
                pages_now,
                a.next_page >= a.total_pages,
                a.src,
            )
        };
        let span = ctx
            .src
            .trace()
            .map(|t| t.ctx_begin(TraceLayer::Task, "rsync.step", ctx.now, Vec::new));
        if pages_now > 0 {
            // Sender: read the chunk at the source.
            let r = ctx.src.read(
                ino,
                page * PAGE_SIZE,
                pages_now * PAGE_SIZE,
                self.class,
                ctx.now,
            )?;
            self.src_read += r.blocks_read;
            self.read_saved += r.cache_hits;
            finish = finish.max(r.finish);
            // Receiver: write it at the destination.
            let w = ctx.dst.write(
                dst_ino,
                page * PAGE_SIZE,
                pages_now * PAGE_SIZE,
                self.class,
                ctx.now,
            )?;
            self.dst_written += w.blocks_written;
            finish = finish.max(w.finish);
            self.pages_done += pages_now;
        }
        if file_done {
            // Commit the destination file and mark the source done.
            let f = ctx.dst.fsync(dst_ino, self.class, finish)?;
            self.dst_written += f.blocks_written;
            finish = finish.max(f.finish);
            if let Some(sid) = self.sid {
                ctx.duet.set_done(sid, ItemId::Inode(ino))?;
            }
            self.tracker.forget(ino);
            self.active = None;
            if let Some(t) = ctx.src.trace() {
                t.event(TraceLayer::Task, "rsync.send", ctx.now, || {
                    vec![("ino", ino.raw().into()), ("src", item_src.into())]
                });
            }
        }
        if let (Some(t), Some(id)) = (ctx.src.trace(), span) {
            t.ctx_end(id, finish);
        }
        let complete = self.active.is_none() && self.remaining(&ctx) == 0;
        Ok(StepResult { finish, complete })
    }

    fn remaining(&self, ctx: &RsyncCtx<'_>) -> usize {
        self.plan[self.plan_idx.min(self.plan.len())..]
            .iter()
            .filter(|&&ino| {
                !self.is_done(ctx, ino) && !self.transferred(ino) && ctx.src.inodes().exists(ino)
            })
            .count()
    }

    /// Progress and I/O accounting. Work units are I/O units: each page
    /// costs a source read plus a destination write; savings are source
    /// reads served from the page cache (at 100 % overlap that is half
    /// of the total, matching §6.2).
    pub fn metrics(&self) -> TaskMetrics {
        TaskMetrics {
            total_units: self.total_pages * 2,
            done_units: self.pages_done * 2,
            saved_units: self.read_saved,
            blocks_read: self.src_read,
            blocks_written: self.dst_written,
        }
    }
}

/// Creates a directory path (mkdir -p) under the destination root.
fn ensure_dir(dst: &mut BtrfsSim, rel: &str) -> SimResult<InodeNr> {
    let mut cur = dst.root();
    for comp in rel.split('/').filter(|c| !c.is_empty()) {
        cur = match dst.inodes().get(cur)?.children.get(comp) {
            Some(&c) => c,
            None => dst.mkdir(cur, comp)?,
        };
    }
    Ok(cur)
}

/// Creates a file (and its parents) under the destination root.
fn ensure_file(dst: &mut BtrfsSim, rel: &str) -> SimResult<InodeNr> {
    let (dir_part, name) = match rel.rfind('/') {
        Some(i) => (&rel[..i], &rel[i + 1..]),
        None => ("", rel),
    };
    let parent = ensure_dir(dst, dir_part)?;
    match dst.inodes().get(parent)?.children.get(name) {
        Some(&c) => Ok(c),
        None => dst.create_file(parent, name),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bridge::pump_btrfs;
    use sim_core::DeviceId;
    use sim_disk::{Disk, HddModel};

    const T0: SimInstant = SimInstant::EPOCH;

    fn two_fs() -> (BtrfsSim, BtrfsSim, Duet) {
        let src_disk = Disk::new(Box::new(HddModel::sas_10k(1 << 16)));
        let dst_disk = Disk::new(Box::new(HddModel::sas_10k(1 << 16)));
        (
            BtrfsSim::new(DeviceId(0), src_disk, 512),
            BtrfsSim::new(DeviceId(1), dst_disk, 512),
            Duet::with_defaults(),
        )
    }

    fn populate_tree(src: &mut BtrfsSim) -> Vec<InodeNr> {
        let docs = src.mkdir(src.root(), "docs").unwrap();
        let inos = vec![
            src.populate_file(src.root(), "top.bin", 16 * PAGE_SIZE)
                .unwrap(),
            src.populate_file(docs, "a.txt", 8 * PAGE_SIZE).unwrap(),
            src.populate_file(docs, "b.txt", 8 * PAGE_SIZE).unwrap(),
        ];
        inos
    }

    fn drive(task: &mut Rsync, src: &mut BtrfsSim, dst: &mut BtrfsSim, duet: &mut Duet) -> u32 {
        let mut steps = 0;
        loop {
            let r = task
                .step(RsyncCtx {
                    src,
                    dst,
                    duet,
                    now: T0,
                })
                .unwrap();
            pump_btrfs(src, duet);
            steps += 1;
            if r.complete {
                return steps;
            }
            assert!(steps < 10_000);
        }
    }

    #[test]
    fn baseline_copies_full_tree() {
        let (mut src, mut dst, mut duet) = two_fs();
        populate_tree(&mut src);
        let mut task = Rsync::new(TaskMode::Baseline, src.root());
        task.start(RsyncCtx {
            src: &mut src,
            dst: &mut dst,
            duet: &mut duet,
            now: T0,
        })
        .unwrap();
        drive(&mut task, &mut src, &mut dst, &mut duet);
        let m = task.metrics();
        assert_eq!(m.total_units, 64, "32 pages x (read + write)");
        assert_eq!(m.done_units, 64);
        assert_eq!(m.blocks_read, 32);
        assert_eq!(m.saved_units, 0);
        // Destination mirrors the source structure and sizes.
        let d = dst.resolve("/docs/a.txt").unwrap();
        assert_eq!(dst.inodes().get(d).unwrap().size_pages(), 8);
        assert_eq!(
            dst.inodes()
                .get(dst.resolve("/top.bin").unwrap())
                .unwrap()
                .size_pages(),
            16
        );
    }

    #[test]
    fn duet_rsync_prioritizes_and_saves_cached_reads() {
        let (mut src, mut dst, mut duet) = two_fs();
        let inos = populate_tree(&mut src);
        let mut task = Rsync::new(TaskMode::Duet, src.root());
        task.start(RsyncCtx {
            src: &mut src,
            dst: &mut dst,
            duet: &mut duet,
            now: T0,
        })
        .unwrap();
        // Workload reads /docs/b.txt (plan-last) into memory.
        src.read(inos[2], 0, 8 * PAGE_SIZE, IoClass::Normal, T0)
            .unwrap();
        pump_btrfs(&mut src, &mut duet);
        // The first step must pick the cached file out of order.
        let r = task
            .step(RsyncCtx {
                src: &mut src,
                dst: &mut dst,
                duet: &mut duet,
                now: T0,
            })
            .unwrap();
        assert!(!r.complete);
        // The cached file (8 pages = exactly one chunk) was transferred
        // first, out of depth-first order.
        assert!(task.meta_sent.contains(&inos[2]));
        assert!(!task.meta_sent.contains(&inos[0]));
        assert!(dst.resolve("/docs/b.txt").is_ok());
        assert!(dst.resolve("/top.bin").is_err());
        drive(&mut task, &mut src, &mut dst, &mut duet);
        let m = task.metrics();
        assert_eq!(m.done_units, m.total_units);
        assert!(m.saved_units >= 8, "cached reads saved: {}", m.saved_units);
        assert_eq!(m.blocks_read, 24, "only cold files read from disk");
    }

    #[test]
    fn stale_hints_backed_out_via_get_path() {
        let (mut src, mut dst, mut duet) = two_fs();
        let inos = populate_tree(&mut src);
        let mut task = Rsync::new(TaskMode::Duet, src.root());
        task.start(RsyncCtx {
            src: &mut src,
            dst: &mut dst,
            duet: &mut duet,
            now: T0,
        })
        .unwrap();
        src.read(inos[2], 0, 8 * PAGE_SIZE, IoClass::Normal, T0)
            .unwrap();
        pump_btrfs(&mut src, &mut duet);
        // Evict by reading a large cold range... simplest: delete the
        // cached pages by deleting and recreating pressure; here we
        // invalidate via file deletion.
        src.delete_file(inos[2]).unwrap();
        pump_btrfs(&mut src, &mut duet);
        // The queue still names the file; get_path must fail and the
        // task must fall back to normal order without crashing.
        drive(&mut task, &mut src, &mut dst, &mut duet);
        let m = task.metrics();
        // Two files remain (the third was deleted): 24 pages copied.
        assert_eq!(m.blocks_read, 24);
        assert!(dst.resolve("/docs/a.txt").is_ok());
    }

    #[test]
    fn transient_path_failure_requeues_hint() {
        use sim_core::fault::{FaultHandle, FaultPlan, FaultSite};
        let (mut src, mut dst, mut duet) = two_fs();
        let inos = populate_tree(&mut src);
        let mut task = Rsync::new(TaskMode::Duet, src.root());
        task.start(RsyncCtx {
            src: &mut src,
            dst: &mut dst,
            duet: &mut duet,
            now: T0,
        })
        .unwrap();
        // Workload reads /top.bin (plan-LAST: depth-first order visits
        // docs/ before it) into memory — 16 resident pages.
        src.read(inos[0], 0, 16 * PAGE_SIZE, IoClass::Normal, T0)
            .unwrap();
        pump_btrfs(&mut src, &mut duet);
        // While armed, every duet_get_path call fails transiently.
        let plan = FaultPlan::quiet().with_ppm(FaultSite::DuetPathUnavailable, 1_000_000);
        duet.set_faults(Some(FaultHandle::new(0xBAD, plan)));
        // Step 1: the top.bin hint is popped, the truth check fails,
        // and the task falls back to plan order (a.txt, one chunk).
        let r = task
            .step(RsyncCtx {
                src: &mut src,
                dst: &mut dst,
                duet: &mut duet,
                now: T0,
            })
            .unwrap();
        pump_btrfs(&mut src, &mut duet);
        assert!(!r.complete);
        assert!(!task.meta_sent.contains(&inos[0]), "hint backed out");
        assert!(task.meta_sent.contains(&inos[1]), "fell back to plan order");
        // The fault clears. The backed-out hint was only transiently
        // unavailable: it must have been re-enqueued, so the next pick
        // takes cached top.bin (16 resident pages) ahead of plan-next
        // b.txt.
        duet.set_faults(None);
        task.step(RsyncCtx {
            src: &mut src,
            dst: &mut dst,
            duet: &mut duet,
            now: T0,
        })
        .unwrap();
        pump_btrfs(&mut src, &mut duet);
        assert!(task.meta_sent.contains(&inos[0]), "requeued hint retried");
        assert!(!task.meta_sent.contains(&inos[2]), "b.txt still pending");
        drive(&mut task, &mut src, &mut dst, &mut duet);
        let m = task.metrics();
        assert_eq!(m.done_units, m.total_units);
        assert!(m.saved_units >= 16, "cached reads saved: {}", m.saved_units);
    }

    #[test]
    fn lost_session_degrades_to_baseline_copy() {
        let (mut src, mut dst, mut duet) = two_fs();
        let inos = populate_tree(&mut src);
        let mut task = Rsync::new(TaskMode::Duet, src.root());
        task.start(RsyncCtx {
            src: &mut src,
            dst: &mut dst,
            duet: &mut duet,
            now: T0,
        })
        .unwrap();
        src.read(inos[2], 0, 8 * PAGE_SIZE, IoClass::Normal, T0)
            .unwrap();
        pump_btrfs(&mut src, &mut duet);
        // The session disappears out from under the task (external
        // deregistration). The task must degrade to the baseline
        // traversal instead of failing the whole transfer.
        duet.deregister(SessionId(0)).unwrap();
        drive(&mut task, &mut src, &mut dst, &mut duet);
        let m = task.metrics();
        assert_eq!(m.done_units, m.total_units);
        assert!(dst.resolve("/top.bin").is_ok());
        assert!(dst.resolve("/docs/a.txt").is_ok());
        assert!(dst.resolve("/docs/b.txt").is_ok());
    }

    #[test]
    fn metadata_sent_once_per_file() {
        let (mut src, mut dst, mut duet) = two_fs();
        let inos = populate_tree(&mut src);
        let mut task = Rsync::new(TaskMode::Duet, src.root());
        task.start(RsyncCtx {
            src: &mut src,
            dst: &mut dst,
            duet: &mut duet,
            now: T0,
        })
        .unwrap();
        src.read(inos[1], 0, 8 * PAGE_SIZE, IoClass::Normal, T0)
            .unwrap();
        pump_btrfs(&mut src, &mut duet);
        drive(&mut task, &mut src, &mut dst, &mut duet);
        assert_eq!(task.meta_sent.len(), 3, "each file's metadata exactly once");
        // Every file transferred exactly once: totals match.
        assert_eq!(task.metrics().done_units, task.metrics().total_units);
    }

    #[test]
    fn subdirectory_scope() {
        let (mut src, mut dst, mut duet) = two_fs();
        populate_tree(&mut src);
        let docs = src.resolve("/docs").unwrap();
        let mut task = Rsync::new(TaskMode::Baseline, docs);
        task.start(RsyncCtx {
            src: &mut src,
            dst: &mut dst,
            duet: &mut duet,
            now: T0,
        })
        .unwrap();
        drive(&mut task, &mut src, &mut dst, &mut duet);
        // Only the subtree is copied, relative to the registered dir.
        assert!(dst.resolve("/a.txt").is_ok());
        assert!(dst.resolve("/b.txt").is_ok());
        assert!(dst.resolve("/top.bin").is_err());
        assert_eq!(task.metrics().blocks_read, 16);
    }
}
