//! File defragmentation (§5.3 of the paper).
//!
//! The baseline defragmenter visits files in inode order and rewrites
//! each fragmented file into one contiguous extent: it reads all pages
//! and writes them back in a single transaction, so the I/O per file is
//! twice its page count. The opportunistic defragmenter registers for
//! `Exists` notifications and prioritizes "files with the highest
//! fraction of pages in memory compared to their size" (a priority
//! queue keyed by resident fraction, as in Algorithm 1). Savings are
//! the pages already in memory (reads avoided) plus the pages already
//! dirty (writes that the flusher would perform anyway, §6.2).

use crate::task::{BtrfsCtx, BtrfsTask, StepResult, TaskMetrics, TaskMode};
use duet::{EventMask, ItemId, Priority, ResidencyTracker, SessionId, TaskScope};
use sim_core::trace::TraceLayer;
use sim_core::{InodeNr, SimError, SimResult};
use sim_disk::IoClass;
use std::collections::BTreeSet;

const FETCH_BATCH: usize = 256;

/// The defragmentation task.
pub struct Defrag {
    mode: TaskMode,
    class: IoClass,
    sid: Option<SessionId>,
    /// Fragmented files at start, in inode order (the plan).
    plan: Vec<InodeNr>,
    plan_set: BTreeSet<InodeNr>,
    plan_idx: usize,
    /// Residency tracking + priority queue (Algorithm 1).
    tracker: ResidencyTracker,
    total_io: u64,
    done_io: u64,
    saved: u64,
    own_read: u64,
    own_written: u64,
    /// Files rewritten.
    pub files_defragged: u64,
    /// Files skipped because the workload defragmented them (full
    /// overwrite collapses the extent map).
    pub files_skipped: u64,
    /// Files with more extents than this are defragmentation targets.
    threshold: usize,
    /// Use degraded file-level hints (inotify-style): any event makes a
    /// file eligible but residency counts are unavailable, so
    /// prioritization by resident fraction is impossible (§3.3's
    /// comparison with Inotify). For the granularity ablation.
    file_granularity: bool,
    /// Test-only defect switch: silently skip rewriting a deterministic
    /// subset of files (oracle self-test).
    skip_some: bool,
    started: bool,
}

impl Defrag {
    /// Creates a defragmentation task (idle I/O priority).
    pub fn new(mode: TaskMode) -> Self {
        Defrag {
            mode,
            class: IoClass::Idle,
            sid: None,
            plan: Vec::new(),
            plan_set: BTreeSet::new(),
            plan_idx: 0,
            tracker: ResidencyTracker::new(Priority::ResidentFraction),
            total_io: 0,
            done_io: 0,
            saved: 0,
            own_read: 0,
            own_written: 0,
            files_defragged: 0,
            files_skipped: 0,
            threshold: 1,
            file_granularity: false,
            skip_some: false,
            started: false,
        }
    }

    /// Sabotage switch for oracle self-tests: even-numbered inodes are
    /// silently left fragmented while their planned work is credited —
    /// the run completes without any error.
    #[doc(hidden)]
    pub fn sabotage_skip_files(&mut self) {
        self.skip_some = true;
    }

    /// Degrades hints to file granularity (see the `file_granularity`
    /// field); models what an inotify-based task could do (§3.3).
    pub fn with_file_granularity(mut self) -> Self {
        self.file_granularity = true;
        self.tracker = ResidencyTracker::new(Priority::TouchedOnly);
        self
    }

    /// Sets the extent-count threshold above which a file counts as
    /// fragmented (default 1: any multi-extent file). Aged filesystems
    /// raise this so relocation extents are not mistaken for
    /// fragmentation.
    pub fn with_threshold(mut self, threshold: usize) -> Self {
        self.threshold = threshold.max(1);
        self
    }

    fn update_queue(&mut self, ctx: &mut BtrfsCtx<'_>) -> SimResult<()> {
        let Some(sid) = self.sid else {
            return Ok(());
        };
        loop {
            let items = match ctx.duet.fetch(sid, FETCH_BATCH, ctx.fs) {
                Ok(items) => items,
                Err(SimError::InvalidSession(_)) => {
                    // Session vanished: degrade to the plan order.
                    self.sid = None;
                    return Ok(());
                }
                Err(e) => return Err(e),
            };
            if items.is_empty() {
                return Ok(());
            }
            let plan = &self.plan_set;
            let inodes = ctx.fs.inodes();
            self.tracker.update_with_sizes(
                &items,
                |ino| plan.contains(&ino),
                |ino| inodes.get(ino).map(|n| n.size_pages()).unwrap_or(0),
            );
        }
    }

    /// Processes one file; returns the step finish time. `src` is the
    /// work item's provenance ("hint" or "scan") for the trace.
    fn process_file(
        &mut self,
        ctx: &mut BtrfsCtx<'_>,
        ino: InodeNr,
        src: &'static str,
    ) -> SimResult<sim_core::SimInstant> {
        let mut finish = ctx.now;
        // Deleted or workload-defragmented files need no work; their
        // planned I/O is complete by other means.
        let planned_io = match ctx.fs.inodes().get(ino) {
            Ok(n) => 2 * n.size_pages(),
            Err(_) => {
                self.files_skipped += 1;
                self.done_io += self.planned_io_of(ino);
                return Ok(finish);
            }
        };
        if self.skip_some && ino.raw().is_multiple_of(2) {
            // Sabotage mode: the file stays fragmented but its planned
            // work is credited as complete.
            self.files_skipped += 1;
            self.done_io += planned_io;
            return Ok(finish);
        }
        if ctx.fs.file_extent_count(ino)? <= self.threshold {
            self.files_skipped += 1;
            self.done_io += planned_io;
            return Ok(finish);
        }
        let r = ctx.fs.defrag_file(ino, self.class, ctx.now)?;
        finish = finish.max(r.stats.finish);
        self.own_read += r.stats.blocks_read;
        self.own_written += r.stats.blocks_written;
        // Savings: resident pages avoided reads; already-dirty pages
        // were due to be written regardless (§6.2).
        self.saved += r.cached_pages + r.already_dirty;
        self.done_io += planned_io;
        self.files_defragged += 1;
        if let Some(t) = ctx.fs.trace() {
            t.event(TraceLayer::Task, "defrag.reloc", ctx.now, || {
                vec![("ino", ino.raw().into()), ("src", src.into())]
            });
        }
        Ok(finish)
    }

    /// Planned I/O for a file recorded at start (2 × pages). Used when
    /// the file has since been deleted.
    fn planned_io_of(&self, _ino: InodeNr) -> u64 {
        // Per-file planned sizes are not retained; deleted files are
        // rare in the workloads and their residual I/O is credited as
        // zero to keep the metric conservative.
        0
    }

    fn mark_done(&mut self, ctx: &mut BtrfsCtx<'_>, ino: InodeNr) -> SimResult<()> {
        if let Some(sid) = self.sid {
            ctx.duet.set_done(sid, ItemId::Inode(ino))?;
        }
        self.tracker.forget(ino);
        Ok(())
    }

    fn is_done(&self, ctx: &BtrfsCtx<'_>, ino: InodeNr) -> bool {
        match self.sid {
            Some(sid) => ctx
                .duet
                .check_done(sid, ItemId::Inode(ino))
                .unwrap_or(false),
            None => false,
        }
    }
}

impl BtrfsTask for Defrag {
    fn name(&self) -> String {
        match self.mode {
            TaskMode::Baseline => "defrag(baseline)".into(),
            TaskMode::Duet => "defrag(duet)".into(),
        }
    }

    fn start(&mut self, ctx: BtrfsCtx<'_>) -> SimResult<()> {
        for ino in ctx.fs.inodes().files_by_inode() {
            let node = ctx.fs.inodes().get(ino)?;
            if node.extents.extent_count() > self.threshold {
                self.plan.push(ino);
                self.plan_set.insert(ino);
                self.total_io += 2 * node.size_pages();
            }
        }
        if self.mode == TaskMode::Duet {
            match ctx.duet.register(
                TaskScope::File {
                    registered_dir: ctx.fs.root(),
                },
                EventMask::EXISTS,
                ctx.fs,
            ) {
                Ok(sid) => self.sid = Some(sid),
                // All session slots taken: defrag in plan order only.
                Err(SimError::TooManySessions) => {}
                Err(e) => return Err(e),
            }
        }
        self.started = true;
        Ok(())
    }

    fn step(&mut self, mut ctx: BtrfsCtx<'_>) -> SimResult<StepResult> {
        assert!(self.started, "step before start");
        self.update_queue(&mut ctx)?;
        let span = ctx
            .fs
            .trace()
            .map(|t| t.ctx_begin(TraceLayer::Task, "defrag.step", ctx.now, Vec::new));
        let end_span = |ctx: &BtrfsCtx<'_>, at| {
            if let (Some(t), Some(id)) = (ctx.fs.trace(), span) {
                t.ctx_end(id, at);
            }
        };
        // Opportunistic: highest resident-fraction file first.
        while let Some(ino) = self.tracker.pop_best() {
            if self.is_done(&ctx, ino) {
                continue;
            }
            let finish = self.process_file(&mut ctx, ino, "hint")?;
            self.mark_done(&mut ctx, ino)?;
            let complete = self.remaining_plan(&ctx) == 0;
            end_span(&ctx, finish);
            return Ok(StepResult { finish, complete });
        }
        // Normal order: next planned file not yet processed.
        while let Some(&ino) = self.plan.get(self.plan_idx) {
            self.plan_idx += 1;
            if self.is_done(&ctx, ino) {
                continue;
            }
            let finish = self.process_file(&mut ctx, ino, "scan")?;
            self.mark_done(&mut ctx, ino)?;
            let complete = self.remaining_plan(&ctx) == 0;
            end_span(&ctx, finish);
            return Ok(StepResult { finish, complete });
        }
        end_span(&ctx, ctx.now);
        Ok(StepResult {
            finish: ctx.now,
            complete: true,
        })
    }

    fn poll(&mut self, mut ctx: BtrfsCtx<'_>) -> SimResult<()> {
        // Keep the priority queue fresh; defragmentation itself needs
        // I/O and stays in `step`.
        self.update_queue(&mut ctx)
    }

    fn stop(&mut self, ctx: BtrfsCtx<'_>) -> SimResult<()> {
        self.poll(BtrfsCtx {
            fs: ctx.fs,
            duet: ctx.duet,
            now: ctx.now,
        })?;
        if let Some(sid) = self.sid.take() {
            ctx.duet.deregister(sid)?;
        }
        Ok(())
    }

    fn metrics(&self) -> TaskMetrics {
        TaskMetrics {
            total_units: self.total_io,
            done_units: self.done_io.min(self.total_io),
            saved_units: self.saved,
            blocks_read: self.own_read,
            blocks_written: self.own_written,
        }
    }
}

impl Defrag {
    fn remaining_plan(&self, ctx: &BtrfsCtx<'_>) -> usize {
        self.plan[self.plan_idx.min(self.plan.len())..]
            .iter()
            .filter(|&&ino| !self.is_done(ctx, ino))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bridge::pump_btrfs;
    use duet::Duet;
    use sim_btrfs::BtrfsSim;
    use sim_core::{DeviceId, SimInstant, PAGE_SIZE};
    use sim_disk::{Disk, HddModel};

    const T0: SimInstant = SimInstant::EPOCH;

    fn setup(files: u64, pages_each: u64, fragment: &[usize]) -> (BtrfsSim, Duet, Vec<InodeNr>) {
        let disk = Disk::new(Box::new(HddModel::sas_10k(1 << 16)));
        let mut fs = BtrfsSim::new(DeviceId(0), disk, 512);
        let mut inos = Vec::new();
        for i in 0..files {
            let ino = fs
                .populate_file(fs.root(), &format!("f{i}"), pages_each * PAGE_SIZE)
                .unwrap();
            inos.push(ino);
        }
        for &i in fragment {
            fs.fragment_file(inos[i], 4).unwrap();
        }
        (fs, Duet::with_defaults(), inos)
    }

    fn drive(task: &mut Defrag, fs: &mut BtrfsSim, duet: &mut Duet) -> u32 {
        let mut steps = 0;
        loop {
            let r = task.step(BtrfsCtx { fs, duet, now: T0 }).unwrap();
            pump_btrfs(fs, duet);
            steps += 1;
            if r.complete {
                return steps;
            }
            assert!(steps < 10_000);
        }
    }

    #[test]
    fn baseline_defrags_all_fragmented_files() {
        let (mut fs, mut duet, inos) = setup(4, 32, &[0, 2]);
        let mut task = Defrag::new(TaskMode::Baseline);
        task.start(BtrfsCtx {
            fs: &mut fs,
            duet: &mut duet,
            now: T0,
        })
        .unwrap();
        drive(&mut task, &mut fs, &mut duet);
        let m = task.metrics();
        assert_eq!(m.total_units, 2 * 2 * 32, "2 files x 2x32 pages");
        assert_eq!(m.done_units, m.total_units);
        assert_eq!(task.files_defragged, 2);
        assert_eq!(fs.file_extent_count(inos[0]).unwrap(), 1);
        assert_eq!(fs.file_extent_count(inos[2]).unwrap(), 1);
        // Untouched files keep their single extent.
        assert_eq!(fs.file_extent_count(inos[1]).unwrap(), 1);
        // Cold cache: all reads and writes performed.
        assert_eq!(m.blocks_read, 64);
        assert_eq!(m.blocks_written, 64);
        assert_eq!(m.saved_units, 0);
    }

    #[test]
    fn duet_prioritizes_resident_files_and_saves_reads() {
        let (mut fs, mut duet, inos) = setup(4, 32, &[0, 1, 2, 3]);
        let mut task = Defrag::new(TaskMode::Duet);
        task.start(BtrfsCtx {
            fs: &mut fs,
            duet: &mut duet,
            now: T0,
        })
        .unwrap();
        // Workload reads file 3 fully into the cache.
        fs.read(inos[3], 0, 32 * PAGE_SIZE, IoClass::Normal, T0)
            .unwrap();
        pump_btrfs(&mut fs, &mut duet);
        // First step must pick file 3 (highest resident fraction).
        let r = task
            .step(BtrfsCtx {
                fs: &mut fs,
                duet: &mut duet,
                now: T0,
            })
            .unwrap();
        pump_btrfs(&mut fs, &mut duet);
        assert!(!r.complete);
        assert_eq!(task.files_defragged, 1);
        assert_eq!(fs.file_extent_count(inos[3]).unwrap(), 1, "file 3 first");
        assert!(task.metrics().saved_units >= 32, "reads saved from cache");
        drive(&mut task, &mut fs, &mut duet);
        assert_eq!(task.files_defragged, 4);
        let m = task.metrics();
        assert_eq!(m.done_units, m.total_units);
    }

    #[test]
    fn workload_defragmented_files_are_skipped() {
        let (mut fs, mut duet, inos) = setup(2, 16, &[0, 1]);
        let mut task = Defrag::new(TaskMode::Duet);
        task.start(BtrfsCtx {
            fs: &mut fs,
            duet: &mut duet,
            now: T0,
        })
        .unwrap();
        // Full overwrite collapses file 0 into one extent: the task can
        // "simply ignore an overwritten file" (§3.1).
        fs.write(inos[0], 0, 16 * PAGE_SIZE, IoClass::Normal, T0)
            .unwrap();
        assert_eq!(fs.file_extent_count(inos[0]).unwrap(), 1);
        pump_btrfs(&mut fs, &mut duet);
        drive(&mut task, &mut fs, &mut duet);
        assert_eq!(task.files_skipped, 1);
        assert_eq!(task.files_defragged, 1);
        let m = task.metrics();
        assert_eq!(m.done_units, m.total_units, "skipped counts as complete");
    }

    #[test]
    fn dirty_pages_count_as_write_savings() {
        let (mut fs, mut duet, inos) = setup(1, 16, &[0]);
        let mut task = Defrag::new(TaskMode::Duet);
        task.start(BtrfsCtx {
            fs: &mut fs,
            duet: &mut duet,
            now: T0,
        })
        .unwrap();
        // Workload appends to the file: dirty pages in memory.
        fs.write(inos[0], 16 * PAGE_SIZE, 4 * PAGE_SIZE, IoClass::Normal, T0)
            .unwrap();
        pump_btrfs(&mut fs, &mut duet);
        drive(&mut task, &mut fs, &mut duet);
        // 4 dirty resident pages: count toward savings both as cached
        // (no read) and as already-dirty (write due anyway).
        assert!(
            task.metrics().saved_units >= 8,
            "saved {}",
            task.metrics().saved_units
        );
    }

    #[test]
    fn no_fragmentation_means_no_work() {
        let (mut fs, mut duet, _) = setup(3, 8, &[]);
        let mut task = Defrag::new(TaskMode::Baseline);
        task.start(BtrfsCtx {
            fs: &mut fs,
            duet: &mut duet,
            now: T0,
        })
        .unwrap();
        let r = task
            .step(BtrfsCtx {
                fs: &mut fs,
                duet: &mut duet,
                now: T0,
            })
            .unwrap();
        assert!(r.complete);
        assert_eq!(task.metrics().total_units, 0);
        assert_eq!(task.metrics().work_fraction(), 1.0);
    }
}
