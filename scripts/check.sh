#!/usr/bin/env bash
# The full CI gate, runnable locally and fully offline (the workspace
# has no external dependencies, so no registry access is needed).
#
#   fmt --check  →  clippy -D warnings  →  xtask lint  →  cargo test
#
# Each step must pass before the next runs; the script exits non-zero
# on the first failure.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo run -p xtask -- lint"
cargo run -q -p xtask -- lint

echo "==> cargo test --workspace"
cargo test -q --workspace

echo "==> all checks passed"
