#!/usr/bin/env bash
# The full CI gate, runnable locally and fully offline (the workspace
# has no external dependencies, so no registry access is needed).
#
#   fmt --check  →  clippy -D warnings  →  xtask lint  →  cargo test
#   →  fault matrix (pinned seed)  →  oracle sabotage localization
#   →  trace compile-out check  →  repro_all smoke (tiny scale, 2 jobs)
#   →  microbenchmarks + perf-regression gate (committed baseline)
#
# Each step must pass before the next runs; the script exits non-zero
# on the first failure.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo run -p xtask -- lint (+ SARIF report)"
# SARIF first (never gates — `|| true`), so CI can upload the findings
# as an artifact even when the gating text run below fails. The two
# runs see the same model and report identical findings at any
# DUET_JOBS width.
mkdir -p results
cargo run -q -p xtask -- lint --format=sarif > results/lint.sarif || true
test -s results/lint.sarif
cargo run -q -p xtask -- lint

echo "==> cargo test --workspace"
cargo test -q --workspace

echo "==> differential container fuzz (fixed seed)"
# DOrdMap (and DMap) against their std oracles under a pinned base
# seed: every case seed derives from it, and a failure prints the
# shrunk op log plus the seed to replay. CI runs a second pass with a
# rotating (but logged) DUET_CHECK_SEED, mirroring the fault-matrix
# split below.
DUET_CHECK_SEED=0xd1ffba5e cargo test -q -p sim-core --release --test omap_differential

echo "==> fault matrix (fixed seed)"
# The deterministic anchor: the full task × fault-plan grid under a
# pinned seed. CI runs a second pass with a rotating (but logged) seed;
# replay any failure with the printed DUET_FAULT_SEED / DUET_FAULT_PLAN.
DUET_FAULT_SEED=0xd0e7f457 cargo test -q -p experiments --test fault_matrix

echo "==> oracle sabotage localization smoke (pinned seed)"
# The trace-armed oracle must *localize* each task's deliberate defect
# (name the divergent effect, entity and originating site), not merely
# detect it; the seeds are pinned inside the test.
cargo test -q -p experiments --test localize

echo "==> trace plane compiles out cleanly"
# With the `trace` feature off every hook must vanish: the stack still
# builds and the localizer degrades to the digest comparison.
cargo check -q -p experiments --no-default-features
cargo test -q -p experiments --no-default-features --test localize

echo "==> snapshot/fork equivalence (digest oracle + cold-path goldens)"
# The warm-start plane (DESIGN.md §14) must be invisible: the digest
# tests pin fork ≡ fresh over the whole stack, and the golden-fixture
# suite re-runs with DUET_SNAPSHOT=0 so the cold build-every-cell path
# produces the same committed bytes as the forked one exercised by the
# workspace pass above.
cargo test -q -p experiments --release snapshot::
DUET_SNAPSHOT=0 cargo test -q --release --test determinism

echo "==> repro_all smoke (DUET_SCALE=512 DUET_JOBS=2, time-bounded)"
cargo build -q --release -p bench --bin repro_all
timeout 600 env DUET_SCALE=512 DUET_JOBS=2 ./target/release/repro_all \
    fig2_scrub_saved fig6_scrub_backup_completed fig9_cpu_overhead > /dev/null
test -s results/BENCH_sweeps.json

echo "==> microbenchmarks + perf-regression gate"
# `bench micro` re-measures the hot-path containers; `bench gate`
# compares the fresh sweeps + micro numbers against the committed
# results/BENCH_baseline.json. Wall times get a tolerance band
# (DUET_GATE_TOL / DUET_GATE_TOL_MICRO); simulated op counts must match
# the baseline exactly — they are deterministic, so drift means the
# simulation changed, not the machine. Re-baseline deliberately with
# `cargo run --release -p bench -- baseline` (DESIGN.md §12).
cargo build -q --release -p bench --bin bench
timeout 600 ./target/release/bench micro
./target/release/bench gate

echo "==> all checks passed"
