//! The paper's §2 motivation, made concrete: two maintenance passes
//! over the same data whose fixed processing orders don't line up.
//!
//! "Consider two hypothetical tasks, one that traverses the file system
//! in depth-first order, and the other in breadth-first order. If these
//! tasks are run concurrently, even careful scheduling of I/O requests
//! may not provide much benefit." — out-of-order processing at the
//! application level is what unlocks the sharing.
//!
//! Here the two "tasks" are two backups of the same data, *staggered*:
//! the second starts when the first is already halfway through, so
//! their fixed inode-order positions never line up, and the page cache
//! (much smaller than the data) cannot bridge the gap by itself.
//! Without Duet each reads the full data set; with Duet, the trailing
//! task consumes the leader's pages the moment the hints arrive.
//!
//! Run with: `cargo run --release --example ordering_motivation`

use duet::Duet;
use duet_tasks::{pump_btrfs, Backup, BtrfsCtx, BtrfsTask, TaskMode};
use sim_btrfs::BtrfsSim;
use sim_core::{DeviceId, SimInstant, PAGE_SIZE};
use sim_disk::{Disk, HddModel};

const T0: SimInstant = SimInstant::EPOCH;

fn build_fs() -> BtrfsSim {
    let disk = Disk::new(Box::new(HddModel::sas_10k(1 << 17)));
    // Cache is ~12 % of the data: incidental sharing between the
    // misaligned passes is negligible.
    let mut fs = BtrfsSim::new(DeviceId(0), disk, 256);
    for i in 0..64 {
        fs.populate_file(fs.root(), &format!("f{i:03}"), 32 * PAGE_SIZE)
            .expect("populate");
    }
    fs
}

/// Runs two concurrent backups in the given mode; returns total blocks
/// read from the device.
fn run_pair(mode: TaskMode) -> (u64, String) {
    let mut fs = build_fs();
    let mut duet = Duet::with_defaults();
    let mut a = Backup::new(mode);
    let mut b = Backup::new(mode);
    a.start(BtrfsCtx {
        fs: &mut fs,
        duet: &mut duet,
        now: T0,
    })
    .expect("start a");
    b.start(BtrfsCtx {
        fs: &mut fs,
        duet: &mut duet,
        now: T0,
    })
    .expect("start b");
    // Stagger: the first task runs alone until halfway. The second is
    // registered and keeps *polling* — consuming hints is CPU work, and
    // cached pages must be grabbed before they evict.
    while a.metrics().done_units * 2 < a.metrics().total_units {
        a.step(BtrfsCtx {
            fs: &mut fs,
            duet: &mut duet,
            now: T0,
        })
        .expect("lead");
        pump_btrfs(&mut fs, &mut duet);
        b.poll(BtrfsCtx {
            fs: &mut fs,
            duet: &mut duet,
            now: T0,
        })
        .expect("poll b");
    }
    let (mut da, mut db) = (false, false);
    while !(da && db) {
        if !da {
            da = a
                .step(BtrfsCtx {
                    fs: &mut fs,
                    duet: &mut duet,
                    now: T0,
                })
                .expect("step a")
                .complete;
            pump_btrfs(&mut fs, &mut duet);
        }
        if !db {
            db = b
                .step(BtrfsCtx {
                    fs: &mut fs,
                    duet: &mut duet,
                    now: T0,
                })
                .expect("step b")
                .complete;
            pump_btrfs(&mut fs, &mut duet);
        }
    }
    let status = duet.status();
    let total = a.metrics().blocks_read + b.metrics().blocks_read;
    (total, status)
}

fn main() {
    let data_blocks = 64 * 32;
    println!("two concurrent backups of {data_blocks} blocks of data\n");
    let (base, _) = run_pair(TaskMode::Baseline);
    println!(
        "baseline (both in fixed inode order): {base} blocks read ({:.1} passes)",
        base as f64 / data_blocks as f64
    );
    let (duet_reads, status) = run_pair(TaskMode::Duet);
    println!(
        "duet (out-of-order via hints):        {duet_reads} blocks read ({:.1} passes)",
        duet_reads as f64 / data_blocks as f64
    );
    println!(
        "\nI/O reduction: {:.0}%",
        100.0 * (1.0 - duet_reads as f64 / base as f64)
    );
    println!("\nframework status after the Duet run:\n{status}");
}
