//! The paper's headline scenario (§6.3): scrubbing, backup and
//! defragmentation run concurrently against a busy device, first as
//! baselines, then Duet-enabled — showing the I/O they save and how
//! much of their work completes inside the window.
//!
//! Run with: `cargo run --release --example concurrent_maintenance`

use experiments::{paper_scaled, run_experiment, TaskKind};
use workloads::{DistKind, Personality};

fn main() {
    let scale = 64;
    let util = 0.5;
    println!(
        "webserver workload at {:.0}% utilization; scrub + backup + defrag;\n\
         scale 1/{scale} of the paper's 50 GB / 30 min setup\n",
        util * 100.0
    );
    for duet in [false, true] {
        let mut cfg = paper_scaled(
            scale,
            Personality::WebServer,
            DistKind::Uniform,
            1.0,
            util,
            vec![TaskKind::Scrub, TaskKind::Backup, TaskKind::Defrag],
            duet,
        );
        cfg.fragmentation = Some((0.1, 5));
        let r = run_experiment(&cfg).expect("experiment");
        println!("{}:", if duet { "DUET-ENABLED" } else { "BASELINE" });
        for t in &r.tasks {
            println!(
                "  {:<18} {:>6.1}% done  {:>6.1}% saved  {:>9} blocks of maintenance I/O{}",
                t.name,
                t.metrics.work_fraction() * 100.0,
                t.metrics.io_saved_fraction() * 100.0,
                t.metrics.blocks_read + t.metrics.blocks_written,
                match t.completion_time {
                    Some(d) => format!("  (finished at {d})"),
                    None => "  (DID NOT FINISH)".into(),
                }
            );
        }
        println!(
            "  combined: {:.1}% of work completed, {:.1}% of maintenance I/O saved\n",
            r.work_completed() * 100.0,
            r.io_saved() * 100.0
        );
    }
    println!(
        "The paper's observation: baselines contend and fail to finish, while\n\
         Duet tasks share one pass over the data and complete with less I/O."
    );
}
