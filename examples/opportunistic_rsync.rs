//! Opportunistic rsync (§5.5, Figure 4): synchronize a directory tree
//! to an empty destination while a foreground workload hammers the
//! source, and compare baseline vs Duet transfer times.
//!
//! Run with: `cargo run --release --example opportunistic_rsync`

use experiments::{paper_scaled, run_rsync_experiment, speedup};
use workloads::{DistKind, Personality};

fn main() {
    let scale = 64;
    println!(
        "rsync of the full file set (1/{scale} of 50 GB) with an unthrottled\n\
         webserver workload on the source device, 100% data overlap\n"
    );
    let cfg = paper_scaled(
        scale,
        Personality::WebServer,
        DistKind::Uniform,
        1.0,
        1.0, // rsync runs at normal priority against an unthrottled workload
        vec![],
        true,
    );
    let base = run_rsync_experiment(&cfg, false).expect("baseline rsync");
    let duet = run_rsync_experiment(&cfg, true).expect("duet rsync");
    println!(
        "baseline rsync: {:>8}  ({} source blocks read from disk)",
        base.completion, base.metrics.blocks_read
    );
    println!(
        "duet rsync:     {:>8}  ({} source blocks read from disk, {:.0}% of reads saved)",
        duet.completion,
        duet.metrics.blocks_read,
        duet.metrics.io_saved_fraction() * 200.0 // savings are of the read half
    );
    println!(
        "\nspeedup: {:.2}x  (the paper reports ~2x at 100% overlap)",
        speedup(base.completion, duet.completion)
    );
}
