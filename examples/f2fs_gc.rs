//! F2fs garbage collection with Duet (§5.4, Table 6): the cleaner picks
//! victim segments whose valid blocks are already cached, cutting the
//! synchronous read phase of segment cleaning.
//!
//! Run with: `cargo run --release --example f2fs_gc`

use experiments::{run_gc_experiment, GcExperimentConfig};
use sim_core::SimDuration;
use sim_disk::SchedulerPolicy;
use sim_f2fs::VictimPolicy;
use workloads::{DistKind, FileSetConfig, Personality, WorkloadConfig};

fn main() {
    println!("fileserver workload on the log-structured filesystem;");
    println!("background cleaner, baseline vs Duet\n");
    println!("util   baseline_ms  duet_ms  duet_cached_blocks/segment");
    for util in [0.4, 0.5, 0.6, 0.7] {
        let cfg = |duet: bool| GcExperimentConfig {
            nsegs: 512,
            seg_blocks: 512,
            cache_pages: 8192,
            fileset: FileSetConfig {
                num_files: 512,
                mean_file_bytes: 256 * 1024,
                sigma: 0.4,
            },
            workload: WorkloadConfig {
                personality: Personality::FileServer,
                dist: DistKind::Uniform,
                coverage: 1.0,
                target_util: util,
                burst: 8,
                append_bytes: 16 * 1024,
                seed: 11,
            },
            duet,
            victim_policy: VictimPolicy::Greedy,
            gc_window: 512,
            gc_interval: SimDuration::from_millis(200),
            policy: SchedulerPolicy::default_cfq(),
            duration: SimDuration::from_secs(30),
            seed: 11,
        };
        let base = run_gc_experiment(&cfg(false)).expect("baseline");
        let duet = run_gc_experiment(&cfg(true)).expect("duet");
        println!(
            "{:>4.0}%  {:>11.2}  {:>7.2}  {:>10.1}",
            util * 100.0,
            base.mean_cleaning_ms,
            duet.mean_cleaning_ms,
            duet.mean_cached
        );
    }
    println!(
        "\nThe paper's Table 6 shape: baseline cleaning time is flat, while\n\
         Duet cleaning gets faster — it picks segments whose blocks are\n\
         cached, skipping the synchronous reads."
    );
}
