//! Quickstart: register a Duet session, generate page-cache activity,
//! and watch the notifications arrive.
//!
//! Run with: `cargo run --example quickstart`

use duet::{Duet, EventMask, ItemFlags, TaskScope};
use duet_tasks::pump_btrfs;
use sim_btrfs::BtrfsSim;
use sim_core::{DeviceId, SimInstant, PAGE_SIZE};
use sim_disk::{Disk, HddModel, IoClass};

fn main() {
    // A 256 MiB simulated disk with a 2 MiB page cache.
    let disk = Disk::new(Box::new(HddModel::sas_10k(1 << 16)));
    let mut fs = BtrfsSim::new(DeviceId(0), disk, 512);
    let mut duet = Duet::with_defaults();

    // Create some files, "already on disk".
    let docs = fs.mkdir(fs.root(), "docs").expect("mkdir");
    let report = fs
        .populate_file(docs, "report.pdf", 8 * PAGE_SIZE)
        .expect("populate");
    let notes = fs
        .populate_file(docs, "notes.txt", 4 * PAGE_SIZE)
        .expect("populate");

    // Register a file task on /docs for existence-state notifications
    // (the mask used by the paper's defrag and rsync tasks, Table 3).
    let sid = duet
        .register(
            TaskScope::File {
                registered_dir: docs,
            },
            EventMask::EXISTS | EventMask::MODIFIED,
            &fs,
        )
        .expect("duet_register");
    println!("registered session {sid} on /docs");

    // A \"foreground application\" reads one file and overwrites part of
    // another; the event pump plays the role of the kernel hooks.
    let t0 = SimInstant::EPOCH;
    fs.read(report, 0, 8 * PAGE_SIZE, IoClass::Normal, t0)
        .expect("read");
    fs.write(notes, 0, 2 * PAGE_SIZE, IoClass::Normal, t0)
        .expect("write");
    pump_btrfs(&mut fs, &mut duet);

    // The maintenance task polls for hints (Algorithm 1's fetch loop).
    let items = duet.fetch(sid, 64, &fs).expect("duet_fetch");
    println!("fetched {} page-level notifications:", items.len());
    for item in &items {
        let ino = item.id.as_inode().expect("file task items are inodes");
        let path = duet.get_path(sid, ino, &fs).expect("duet_get_path");
        let mut what = Vec::new();
        if item.flags.contains(ItemFlags::EXISTS) {
            what.push("in cache");
        }
        if item.flags.contains(ItemFlags::MODIFIED) {
            what.push("dirty");
        }
        println!("  {path} offset {:>6}: {}", item.offset, what.join(" + "));
    }

    // Mark one file processed: no more notifications for it.
    let first = items[0].id.as_inode().unwrap();
    duet.set_done(sid, duet::ItemId::Inode(first)).unwrap();
    fs.read(first, 0, PAGE_SIZE, IoClass::Normal, t0).unwrap();
    pump_btrfs(&mut fs, &mut duet);
    let again = duet.fetch(sid, 64, &fs).expect("fetch");
    println!(
        "after duet_set_done, a re-read of {} produced {} new items",
        fs.path_of(first).unwrap(),
        again.len()
    );
    duet.deregister(sid).expect("duet_deregister");
    println!("done.");
}
