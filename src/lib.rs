//! Umbrella crate for the Duet reproduction workspace.
//!
//! Re-exports every layer of the stack so that examples and integration
//! tests can depend on a single crate. See the individual crates for the
//! real documentation:
//!
//! - [`duet`] — the paper's contribution: the Duet framework.
//! - [`duet_tasks`] — the five maintenance tasks (scrub, backup, defrag,
//!   F2fs GC, rsync), each with baseline and opportunistic modes.
//! - [`sim_disk`] / [`sim_cache`] / [`sim_btrfs`] / [`sim_f2fs`] — the
//!   simulated storage stack.
//! - [`workloads`] — Filebench-style foreground workload generation.
//! - [`experiments`] — the evaluation harness and metrics.

pub use duet;
pub use duet_tasks;
pub use experiments;
pub use sim_btrfs;
pub use sim_cache;
pub use sim_core;
pub use sim_disk;
pub use sim_f2fs;
pub use workloads;
